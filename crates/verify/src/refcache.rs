//! Reference models of the baseline caches, plus their differential
//! and Belady-sanity checks.
//!
//! Each reference is an independent, obviously-correct re-derivation of
//! the baseline's spec (linear scans, explicit timestamps — no shared
//! code with `metal-sim`): a set-associative LRU for `AddressCache` and
//! `KeyCache`, and a fully-associative LRU that upper-bounds
//! `OptCache`'s misses (Belady is optimal, so OPT below LRU is a hard
//! oracle, as is capacity monotonicity).

use metal_sim::caches::{AddressCache, KeyCache, OptCache};
use metal_sim::rng::SplitRng;
use metal_sim::types::BlockAddr;

/// Reference set-associative LRU: `sets × ways` with per-line last-use
/// timestamps, set selected by `tag % sets` (the baselines' low-bits
/// rule). Works for both the address cache (tag = block) and the
/// X-Cache (tag = key).
pub struct RefSetLru {
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    tick: u64,
}

impl RefSetLru {
    /// `entries` total lines, `ways` associativity (must divide).
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways));
        RefSetLru {
            sets: vec![Vec::new(); entries / ways],
            ways,
            tick: 0,
        }
    }

    /// Probe-with-allocate-on-miss (the address cache's `access`).
    pub fn access(&mut self, tag: u64) -> bool {
        self.tick += 1;
        let n_sets = self.sets.len();
        let set = &mut self.sets[(tag as usize) % n_sets];
        if let Some(line) = set.iter_mut().find(|(t, _)| *t == tag) {
            line.1 = self.tick;
            return true;
        }
        if set.len() >= self.ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .unwrap();
            set.remove(victim);
        }
        set.push((tag, self.tick));
        false
    }

    /// Probe without allocation (the X-Cache's `probe`).
    pub fn probe(&mut self, tag: u64) -> bool {
        self.tick += 1;
        let n_sets = self.sets.len();
        let set = &mut self.sets[(tag as usize) % n_sets];
        if let Some(line) = set.iter_mut().find(|(t, _)| *t == tag) {
            line.1 = self.tick;
            return true;
        }
        false
    }

    /// Explicit insert (the X-Cache's allocate path; replaces in place
    /// on a duplicate tag).
    pub fn insert(&mut self, tag: u64) {
        self.tick += 1;
        let ways = self.ways;
        let n_sets = self.sets.len();
        let set = &mut self.sets[(tag as usize) % n_sets];
        if let Some(line) = set.iter_mut().find(|(t, _)| *t == tag) {
            line.1 = self.tick;
            return;
        }
        if set.len() >= ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .unwrap();
            set.remove(victim);
        }
        set.push((tag, self.tick));
    }
}

/// A failed baseline check: which access diverged and how.
pub type TraceDivergence = crate::check::Divergence;

fn fail(op: usize, what: impl Into<String>) -> Result<(), TraceDivergence> {
    Err(TraceDivergence {
        op,
        what: what.into(),
    })
}

/// Differential: `AddressCache` vs the reference set-LRU, access by
/// access, plus final counter coherence.
pub fn check_address_differential(
    trace: &[u64],
    entries: usize,
    ways: usize,
) -> Result<(), TraceDivergence> {
    let mut real = AddressCache::new(entries, ways);
    let mut reference = RefSetLru::new(entries, ways);
    let mut misses = 0u64;
    for (i, &b) in trace.iter().enumerate() {
        let r = real.access(BlockAddr::new(b));
        let e = reference.access(b);
        if r != e {
            return fail(
                i,
                format!("address access({b}): reference says hit={e}, cache says hit={r}"),
            );
        }
        misses += (!e) as u64;
    }
    if real.probes() != trace.len() as u64 || real.misses() != misses {
        return fail(
            trace.len(),
            format!(
                "address counters probes/misses {}/{} vs reference {}/{misses}",
                real.probes(),
                real.misses(),
                trace.len()
            ),
        );
    }
    Ok(())
}

/// Differential: `KeyCache` probe/insert mix vs the reference set-LRU.
/// `ops` alternate probes and allocate-on-miss inserts exactly as the
/// X-Cache design model drives it.
pub fn check_keycache_differential(
    keys: &[u64],
    entries: usize,
    ways: usize,
) -> Result<(), TraceDivergence> {
    let mut real = KeyCache::new(entries, ways);
    let mut reference = RefSetLru::new(entries, ways);
    for (i, &k) in keys.iter().enumerate() {
        let r = real.probe(k).is_some();
        let e = reference.probe(k);
        if r != e {
            return fail(
                i,
                format!("key probe({k}): reference says hit={e}, cache says hit={r}"),
            );
        }
        if !r {
            real.insert(k, k);
            reference.insert(k);
        }
    }
    Ok(())
}

/// Belady sanity oracle for `OptCache`:
/// - OPT misses ≤ fully-associative LRU misses on the identical trace
///   (OPT is optimal; FA-LRU is one feasible policy);
/// - misses are monotonically non-increasing in capacity;
/// - a trace whose distinct blocks all fit cold-misses exactly once
///   each;
/// - the per-access hit vector is trace-aligned and consistent with the
///   miss count.
pub fn check_opt_sanity(trace: &[u64], entries: usize) -> Result<(), TraceDivergence> {
    let blocks: Vec<BlockAddr> = trace.iter().map(|&b| BlockAddr::new(b)).collect();
    let opt = OptCache::new(entries).simulate(&blocks);
    if opt.hits.len() != trace.len() {
        return fail(trace.len(), "OPT hit vector not trace-aligned");
    }
    let counted = opt.hits.iter().filter(|h| !**h).count() as u64;
    if counted != opt.misses {
        return fail(
            trace.len(),
            format!(
                "OPT miss count {} != hit-vector misses {counted}",
                opt.misses
            ),
        );
    }

    let mut lru = RefSetLru::new(entries, entries); // one set = fully associative
    let lru_misses = trace.iter().filter(|&&b| !lru.access(b)).count() as u64;
    if opt.misses > lru_misses {
        return fail(
            trace.len(),
            format!(
                "Belady violated: OPT misses {} > FA-LRU misses {lru_misses} at {entries} entries",
                opt.misses
            ),
        );
    }

    let bigger = OptCache::new(entries * 2).simulate(&blocks);
    if bigger.misses > opt.misses {
        return fail(
            trace.len(),
            format!(
                "capacity monotonicity violated: {} entries miss {}, {} entries miss {}",
                entries,
                opt.misses,
                entries * 2,
                bigger.misses
            ),
        );
    }

    let mut distinct: Vec<u64> = trace.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() <= entries && opt.misses != distinct.len() as u64 {
        return fail(
            trace.len(),
            format!(
                "all {} distinct blocks fit in {entries} entries but OPT missed {}",
                distinct.len(),
                opt.misses
            ),
        );
    }
    Ok(())
}

/// Generates one baseline trace case and runs all three checks.
pub fn check_baselines_case(seed: u64) -> Result<(), TraceDivergence> {
    let mut rng = SplitRng::stream(seed, 0xba5e11);
    let ways = *crate::scenario::pick(&mut rng, &[1, 2, 4, 16]);
    let sets = *crate::scenario::pick(&mut rng, &[1, 2, 8, 64]);
    let entries = ways * sets;
    let universe = match rng.gen_range(0..3u64) {
        0 => entries as u64 / 2 + 1, // fits: cold misses only
        1 => entries as u64 + 1,     // LRU adversary
        _ => entries as u64 * 4,     // thrash
    };
    let n = rng.gen_range(10..500u64) as usize;
    let mut trace = Vec::with_capacity(n);
    let mut cursor = 0u64;
    for _ in 0..n {
        // Mix of uniform, cyclic and hot-block accesses.
        let b = match rng.gen_range(0..4u64) {
            0 => {
                cursor = (cursor + 1) % universe.max(1);
                cursor
            }
            1 => 0,
            _ => rng.gen_range(0..universe.max(1)),
        };
        trace.push(b);
    }
    check_address_differential(&trace, entries, ways)?;
    check_keycache_differential(&trace, entries, ways)?;
    check_opt_sanity(&trace, entries.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lru_matches_documented_example() {
        // Mirrors AddressCache's lru_evicts_oldest test independently.
        let mut c = RefSetLru::new(2, 2);
        assert!(!c.access(0));
        assert!(!c.access(2));
        assert!(c.access(0));
        assert!(!c.access(4)); // evicts 2
        assert!(c.access(0));
        assert!(!c.access(2));
    }

    #[test]
    fn baseline_cases_pass() {
        for seed in 0..60 {
            if let Err(d) = check_baselines_case(seed) {
                panic!("seed {seed}: {d}");
            }
        }
    }
}
