//! Spatial analysis and a two-table JOIN on Aurochs/Gorgon (the paper's
//! §4.3 scenario plus the JOIN workload of Fig. 23).
//!
//! Both workloads walk *two* indexes, which is where the IX-cache's
//! per-index range tags and the composite (Level + Branch) descriptors
//! earn their keep.
//!
//! ```sh
//! cargo run --release --example spatial_join
//! ```

use metal::core::prelude::*;
use metal::workloads::{Scale, Workload};

fn main() {
    let scale = Scale::bench().with_walks(30_000);

    for workload in [Workload::RTree, Workload::Join] {
        let built = workload.build(scale);
        let exp = built.experiment();
        println!(
            "\n=== {} — {} walks over {} indexes (depths: {:?}) ===",
            built.name,
            built.walks(),
            built.indexes.len(),
            exp.indexes.iter().map(|i| i.depth()).collect::<Vec<_>>()
        );
        for (i, d) in built.descriptors.iter().enumerate() {
            println!("  index {i} pattern: {d:?}");
        }

        let cfg = RunConfig::default().with_lanes(built.tiles);
        let stream = run_design(&DesignSpec::Stream, &exp, &cfg);
        let addr = run_design(
            &DesignSpec::Address {
                entries: 1024,
                ways: 16,
            },
            &exp,
            &cfg,
        );
        let metal = run_design(
            &DesignSpec::Metal {
                ix: IxConfig::kb64(),
                descriptors: built.descriptors.clone(),
                tune: true,
                batch_walks: built.batch_walks,
            },
            &exp,
            &cfg,
        );

        println!(
            "  speedup vs stream: address {:.2}x, METAL {:.2}x",
            addr.speedup_vs(&stream),
            metal.speedup_vs(&stream)
        );
        println!(
            "  DRAM energy vs stream: address {:.2}, METAL {:.2} (lower is better)",
            addr.dram_energy_vs(&stream),
            metal.dram_energy_vs(&stream)
        );
        println!(
            "  cache accesses: address {} vs METAL {} ({:.1}x reduction)",
            addr.stats.probes,
            metal.stats.probes,
            addr.stats.probes as f64 / metal.stats.probes.max(1) as f64
        );
    }
}
