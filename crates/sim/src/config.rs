//! Simulation parameter sets.
//!
//! Defaults follow the paper's simulation setup (Fig. 14): a 2.5D-stacked
//! HBM with ~100-cycle access latency, 16 pseudo-banks, 64 B blocks, and the
//! energy constants the paper reports in §5.7 (9000 fJ per IX-cache access
//! vs 7000 fJ for the address cache and X-Cache; DRAM access energy dominated
//! by the 64 B burst).

use crate::types::Cycles;

/// Parameters of the banked DRAM/HBM channel model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Access latency on a row-buffer conflict (precharge + activate +
    /// CAS) — the worst-case path.
    pub latency: Cycles,
    /// Access latency when the target row is already open in the bank's
    /// row buffer (CAS only). Sequential block streams — bulk node
    /// refills, leaf-chain scans — mostly hit the open row.
    pub row_hit_latency: Cycles,
    /// Blocks per DRAM row per bank (2 KiB rows of 64 B blocks = 32).
    pub row_blocks: u64,
    /// Number of independent HBM channels; blocks interleave across
    /// channels, each with its own data bus (banks are per-channel).
    pub channels: usize,
    /// Number of independently schedulable banks per channel.
    pub banks: usize,
    /// Bank busy (occupancy) time per 64 B access — limits per-bank rate.
    pub bank_busy: Cycles,
    /// Peak bandwidth of one channel's bus in bytes per cycle; aggregate
    /// peak is `channels × bytes_per_cycle`.
    pub bytes_per_cycle: u64,
    /// Dynamic energy per 64 B DRAM access, in femtojoules.
    pub energy_per_access_fj: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency: Cycles::new(100),
            row_hit_latency: Cycles::new(55),
            row_blocks: 32,
            channels: 2,
            banks: 16,
            bank_busy: Cycles::new(4),
            // HBM-class: 16 B/cycle per channel at the accelerator clock
            // (32 B/cycle aggregate over the two default channels).
            bytes_per_cycle: 16,
            // ~20 nJ per 64 B burst is a common DDR/HBM ballpark.
            energy_per_access_fj: 20_000_000,
        }
    }
}

/// On-chip access energy constants (paper §5.7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyConfig {
    /// Per-access energy of an IX-cache probe (range-tag match), fJ.
    pub ix_access_fj: u64,
    /// Per-access energy of an address-cache or X-Cache probe, fJ.
    pub addr_access_fj: u64,
    /// Per-op energy of a compute-tile operation, fJ.
    pub op_fj: u64,
    /// Per-access energy of the walker/pattern-controller logic, fJ.
    pub walker_fj: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            ix_access_fj: 9_000,
            addr_access_fj: 7_000,
            op_fj: 500,
            walker_fj: 1_000,
        }
    }
}

/// Top-level simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// DRAM channel parameters.
    pub dram: DramConfig,
    /// On-chip energy constants.
    pub energy: EnergyConfig,
    /// Latency of an SRAM (scratchpad / cache data array) hit.
    pub sram_latency: Cycles,
    /// Latency of a cache tag match (address compare).
    pub tag_latency: Cycles,
    /// Per-access latency of the general cache *hierarchy* the
    /// address-organized DSAs (MAD, Widx) walk through — an L1-miss/L2-hit
    /// path for a 64 kB working set, paid on every block touched whether
    /// it hits or misses on-chip (§5.7: "every memory access needs to go
    /// through the cache hierarchy"). Dedicated DSA caches (X-Cache, the
    /// IX-cache) use the fast `tag`/`sram` path instead.
    pub hierarchy_hit_latency: Cycles,
    /// Extra latency of the IX-cache range match over an address match
    /// (segmented comparators; paper Fig. 7 reports ~1 ns, i.e. one cycle
    /// at the DSA clock).
    pub range_match_latency: Cycles,
    /// Cycles to search the sorted keys inside one fetched index node
    /// (parallel `<=` comparators followed by find-first-set, §3.1).
    pub node_search_latency: Cycles,
    /// Maximum number of in-flight walks (lanes) the walker engine
    /// multiplexes; one lane per hardware walk context.
    pub lanes: usize,
    /// Memory-level-parallelism window per lane: how many walks one
    /// walker FSM keeps in flight simultaneously. Each lane runs
    /// `mlp_width` walk slots that share the lane's compute (node
    /// search, tag match — serialized per lane) while their DRAM
    /// refills overlap against the banked channels, the Cuckoo-Trie
    /// software-pipelining thesis applied to the walker hardware.
    /// `1` (the default) is the classic one-walk-per-lane engine and
    /// is byte-identical to the pre-MLP simulator.
    pub mlp_width: usize,
    /// Entries (64 B lines) across the tile-local data scratchpads that
    /// stage leaf data objects for METAL designs (64 kB aggregate default,
    /// mirroring the global scratchpad of the paper's Fig. 4 platform).
    pub data_scratch_entries: usize,
    /// Operations retired per cycle by one compute tile.
    pub tile_ops_per_cycle: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dram: DramConfig::default(),
            energy: EnergyConfig::default(),
            sram_latency: Cycles::new(2),
            tag_latency: Cycles::new(1),
            hierarchy_hit_latency: Cycles::new(20),
            range_match_latency: Cycles::new(1),
            node_search_latency: Cycles::new(2),
            lanes: 16,
            mlp_width: 1,
            data_scratch_entries: 1024,
            tile_ops_per_cycle: 1,
        }
    }
}

impl SimConfig {
    /// Configuration with `lanes` walk contexts (one per compute tile in the
    /// default DSA mapping).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one walk lane");
        self.lanes = lanes;
        self
    }

    /// Configuration with an `mlp_width`-deep per-lane walk window (the
    /// `--mlp-width` flag). Width 1 is the serial pre-MLP walker.
    pub fn with_mlp_width(mut self, width: usize) -> Self {
        assert!(width > 0, "the MLP window must hold at least one walk");
        self.mlp_width = width;
        self
    }

    /// Total number of walk slots the engine schedules:
    /// `lanes × mlp_width`. Slot `s` belongs to physical lane
    /// `s / mlp_width`, which is what serializes per-lane compute and
    /// keeps private-cache designs pinned to their lane's slice.
    pub fn walk_slots(&self) -> usize {
        self.lanes * self.mlp_width.max(1)
    }

    /// The physical lane that owns walk slot `slot`.
    pub fn lane_of_slot(&self, slot: usize) -> usize {
        slot / self.mlp_width.max(1)
    }

    /// Total latency of an IX-cache hit: tag + range match + data array.
    pub fn ix_hit_latency(&self) -> Cycles {
        self.tag_latency + self.range_match_latency + self.sram_latency
    }

    /// Total latency of an address-cache or X-Cache hit on a *dedicated*
    /// fast path (X-Cache's hit path; the paper assumes no extra handler).
    pub fn addr_hit_latency(&self) -> Cycles {
        self.tag_latency + self.sram_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.energy.ix_access_fj, 9_000);
        assert_eq!(cfg.energy.addr_access_fj, 7_000);
        assert_eq!(cfg.dram.latency, Cycles::new(100));
        assert_eq!(cfg.dram.banks, 16);
    }

    #[test]
    fn hit_latencies_compose() {
        let cfg = SimConfig::default();
        assert!(cfg.ix_hit_latency() > cfg.addr_hit_latency());
        assert_eq!(
            cfg.ix_hit_latency().get(),
            cfg.tag_latency.get() + cfg.range_match_latency.get() + cfg.sram_latency.get()
        );
    }

    #[test]
    fn with_lanes_overrides() {
        let cfg = SimConfig::default().with_lanes(64);
        assert_eq!(cfg.lanes, 64);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_lanes_rejected() {
        let _ = SimConfig::default().with_lanes(0);
    }

    #[test]
    fn mlp_width_defaults_to_serial() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.mlp_width, 1);
        assert_eq!(cfg.walk_slots(), cfg.lanes);
        assert_eq!(cfg.lane_of_slot(5), 5);
    }

    #[test]
    fn mlp_slots_map_back_to_lanes() {
        let cfg = SimConfig::default().with_lanes(4).with_mlp_width(3);
        assert_eq!(cfg.walk_slots(), 12);
        // Slots 0..3 share lane 0, 3..6 lane 1, and so on.
        assert_eq!(cfg.lane_of_slot(0), 0);
        assert_eq!(cfg.lane_of_slot(2), 0);
        assert_eq!(cfg.lane_of_slot(3), 1);
        assert_eq!(cfg.lane_of_slot(11), 3);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_mlp_width_rejected() {
        let _ = SimConfig::default().with_mlp_width(0);
    }
}
