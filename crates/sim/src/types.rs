//! Fundamental value types shared across the simulator.
//!
//! The simulator works in whole clock cycles ([`Cycles`]) over a simulated
//! physical address space ([`Addr`]) that is divided into 64-byte blocks
//! ([`BlockAddr`]), matching the paper's fixed 64 B cache-block size
//! ("All cache blocks are set to 64 bytes to ensure a fair comparison",
//! §5). Index keys are 64-bit unsigned integers ([`Key`]), the widest key
//! the paper's hardware supports (4–8 byte keys, §4.4).

use std::fmt;

/// Size of one cache/DRAM block in bytes (fixed at 64 B as in the paper).
pub const BLOCK_BYTES: u64 = 64;

/// A key in an index's key space.
///
/// Keys are the namespace through which DSA tiles address data ("the compute
/// tiles interface with the data-structure using keys, not addresses", §3).
pub type Key = u64;

/// A simulated clock-cycle count.
///
/// `Cycles` is an additive quantity; it supports saturating arithmetic so
/// that long runs cannot overflow silently.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// Returns the raw cycle count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A simulated physical byte address.
///
/// Index nodes are placed in this address space by `metal-index`'s arena
/// allocator; the DRAM model and the address-based caches operate on the
/// block the address falls in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Returns the raw byte address.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The 64-byte block this address falls in.
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES)
    }

    /// Offsets the address by `bytes`.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A 64-byte-aligned block number (byte address divided by [`BLOCK_BYTES`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub fn new(b: u64) -> Self {
        BlockAddr(b)
    }

    /// Returns the raw block number.
    pub fn get(self) -> u64 {
        self.0
    }

    /// First byte address of this block.
    pub fn base(self) -> Addr {
        Addr(self.0 * BLOCK_BYTES)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// Number of blocks an object of `bytes` bytes starting at `addr` spans.
pub fn blocks_spanned(addr: Addr, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let first = addr.get() / BLOCK_BYTES;
    let last = (addr.get() + bytes - 1) / BLOCK_BYTES;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(5);
        let b = Cycles::new(7);
        assert_eq!((a + b).get(), 12);
        assert_eq!((b - a).get(), 2);
        assert_eq!((a - b).get(), 0, "subtraction saturates at zero");
        assert_eq!(a.max(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn cycles_saturating_add_does_not_overflow() {
        let near_max = Cycles::new(u64::MAX - 1);
        assert_eq!(near_max.saturating_add(Cycles::new(10)).get(), u64::MAX);
    }

    #[test]
    fn addr_block_mapping() {
        assert_eq!(Addr::new(0).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(63).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(64).block(), BlockAddr::new(1));
        assert_eq!(Addr::new(130).block(), BlockAddr::new(2));
        assert_eq!(BlockAddr::new(2).base(), Addr::new(128));
    }

    #[test]
    fn addr_offset() {
        assert_eq!(Addr::new(100).offset(28), Addr::new(128));
    }

    #[test]
    fn blocks_spanned_counts_straddles() {
        // A 64-byte object aligned to a block spans exactly one block.
        assert_eq!(blocks_spanned(Addr::new(64), 64), 1);
        // Unaligned 64-byte object straddles two blocks.
        assert_eq!(blocks_spanned(Addr::new(32), 64), 2);
        // Zero-byte object spans nothing.
        assert_eq!(blocks_spanned(Addr::new(32), 0), 0);
        // Large object.
        assert_eq!(blocks_spanned(Addr::new(0), 640), 10);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", Cycles::new(3)), "3cy");
        assert_eq!(format!("{:?}", Addr::new(255)), "0xff");
        assert_eq!(format!("{:?}", BlockAddr::new(9)), "blk#9");
    }
}
