//! Schema validation and the noise-aware regression gate shared by
//! `bench_suite --compare` and the fixture-replay regression tests.
//!
//! The PR-5 gate compared single-shot timings with a bare >20% ratio
//! threshold, which flaked on loaded 1-vCPU CI runners: a scheduler
//! hiccup during a sub-second ci-scale run moves a 30 ns probe path or
//! a 0.8 s sweep well past 20% with no code change. Three fixes, here
//! or in `bench_suite`/`ci.sh`:
//!
//! 1. **min-of-K timing** — every timed metric is now the best of
//!    [`TIMING_REPEATS`] repeats (minimum latency / wall clock, maximum
//!    throughput). The minimum of K samples estimates the noise-free
//!    cost; one-sided scheduler noise cannot lower it.
//! 2. **noise floors** — a metric only regresses when the ratio
//!    exceeds [`GATE_RATIO`] *and* the absolute delta exceeds its
//!    class's [`noise_floor`]. The floors are set from the observed
//!    run-to-run spread of the committed `BENCH_ci.json` methodology on
//!    a loaded single-core runner; they deliberately only bind where
//!    the measured quantity is small enough for fixed jitter to
//!    dominate (ci scale), and are negligible against the
//!    order-of-magnitude regressions the gate exists to catch.
//! 3. **a ratio sized to the infrastructure** — [`GATE_RATIO`] is 2.0,
//!    not 1.2, because the same binary measured minutes apart on this
//!    shared runner was observed to swing up to 1.9× (hypervisor
//!    neighbors / steal time), min-of-K included. The gate exists to
//!    catch algorithmic regressions — the linear-scan probe it
//!    replaced was 3.7× slower — not single-digit drift, which the
//!    per-PR `BENCH.json` trajectory tracks instead. `ci.sh` backs
//!    this with one retry in a fresh measurement window, so a red
//!    gate means two independent >2× readings.
//!
//! Two recorded noisy baseline/fresh pairs that tripped the old gate
//! live in `tests/fixtures/`; `tests/gate_replay.rs` replays them and
//! asserts the current gate reports no false positive (and still
//! catches a genuine slowdown).

use metal_obs::Json;

/// The emitted/validated schema tag (unchanged since PR 5, so the
/// committed `BENCH_ci.json` baseline stays valid).
pub const SCHEMA: &str = "metal-bench-suite/1";

/// A metric regresses only beyond this old/new (or new/old, for
/// latencies) ratio. Sized above the ~1.9× same-binary swing measured
/// on the shared 1-vCPU runner (see the module docs): the gate targets
/// algorithmic blowups, not machine-speed drift.
pub const GATE_RATIO: f64 = 2.0;

/// How many times `bench_suite` repeats each timed measurement before
/// taking the best sample.
pub const TIMING_REPEATS: usize = 3;

/// The minimum absolute delta (in the metric's own unit) that can count
/// as a regression, per metric class:
///
/// - `probe_ns.*` — 15 ns: the hit/miss paths sit at 30–120 ns, where
///   timer granularity and a single cache-cold TLB walk move single
///   samples by >20% on a shared core;
/// - `walks_per_sec.*` / `native_walks_per_sec.*` — 100 000 walks/s:
///   ci-scale runs last ~100 ms, so millisecond-scale scheduler
///   preemption shifts the rate by this much run to run (the native
///   executor's wall clock is as preemptible as the simulator's);
/// - wall clocks (seconds) — 0.5 s: the observed hiccup size on a
///   loaded runner.
pub fn noise_floor(metric: &str) -> f64 {
    if metric.starts_with("probe_ns.") {
        15.0
    } else if metric.starts_with("walks_per_sec.") || metric.starts_with("native_walks_per_sec.") {
        100_000.0
    } else {
        0.5
    }
}

/// One shared metric's comparison against the baseline.
pub struct MetricDiff {
    pub name: String,
    pub old: f64,
    pub new: f64,
    /// Worseness ratio, ≥ orientation-normalized (ratio > 1 means the
    /// fresh run is worse on this metric).
    pub ratio: f64,
    /// True when both the ratio and the absolute-delta floor are
    /// exceeded.
    pub regressed: bool,
}

impl MetricDiff {
    fn compute(name: &str, old: f64, new: f64, bigger_is_worse: bool) -> MetricDiff {
        let ratio = if bigger_is_worse {
            new / old.max(1e-9)
        } else {
            old / new.max(1e-9)
        };
        let regressed = ratio > GATE_RATIO && (new - old).abs() > noise_floor(name);
        MetricDiff {
            name: name.to_string(),
            old,
            new,
            ratio,
            regressed,
        }
    }

    /// The human-readable per-metric line `bench_suite` prints.
    pub fn describe(&self) -> String {
        let verdict = if self.regressed {
            "REGRESSED"
        } else if self.ratio > GATE_RATIO {
            "worse, within noise floor"
        } else if self.ratio >= 1.0 {
            "worse, within gate"
        } else {
            "better"
        };
        format!(
            "{}: {:.1} -> {:.1} ({}{:.0}% {verdict})",
            self.name,
            self.old,
            self.new,
            if self.ratio >= 1.0 { "+" } else { "-" },
            (self.ratio.max(1.0 / self.ratio) - 1.0) * 100.0,
        )
    }
}

/// The full comparison of a fresh run against a baseline document.
pub struct GateReport {
    pub diffs: Vec<MetricDiff>,
}

impl GateReport {
    /// True when any shared metric regressed past ratio *and* floor.
    pub fn regressed(&self) -> bool {
        self.diffs.iter().any(|d| d.regressed)
    }
}

/// Compares every metric shared by `base` and `new` (latencies and wall
/// clocks up = worse, throughputs down = worse). Metrics present on
/// only one side are skipped, so design-roster changes don't break
/// older baselines.
pub fn compare(base: &Json, new: &Json) -> GateReport {
    let mut diffs = Vec::new();
    for key in ["probe_hit", "probe_miss", "insert_evict"] {
        if let (Some(o), Some(n)) = (
            base.get("probe_ns")
                .and_then(|p| p.get(key))
                .and_then(Json::as_f64),
            new.get("probe_ns")
                .and_then(|p| p.get(key))
                .and_then(Json::as_f64),
        ) {
            diffs.push(MetricDiff::compute(&format!("probe_ns.{key}"), o, n, true));
        }
    }
    for group in ["walks_per_sec", "native_walks_per_sec"] {
        if let (Some(Json::Obj(old_fields)), Some(new_wps)) = (base.get(group), new.get(group)) {
            for (k, old_v) in old_fields {
                if let (Some(o), Some(n)) = (old_v.as_f64(), new_wps.get(k).and_then(Json::as_f64))
                {
                    diffs.push(MetricDiff::compute(&format!("{group}.{k}"), o, n, false));
                }
            }
        }
    }
    if let (Some(o), Some(n)) = (
        base.get("fig18_wall_clock_s").and_then(Json::as_f64),
        new.get("fig18_wall_clock_s").and_then(Json::as_f64),
    ) {
        diffs.push(MetricDiff::compute("fig18_wall_clock_s", o, n, true));
    }
    GateReport { diffs }
}

/// Validates the `metal-bench-suite/1` schema: required fields, types,
/// and finite non-negative numbers throughout.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("schema field must be \"{SCHEMA}\""));
    }
    match doc.get("scale").and_then(Json::as_str) {
        Some("ci") | Some("bench") => {}
        other => return Err(format!("scale must be ci|bench, got {other:?}")),
    }
    doc.get("probe_iters")
        .and_then(Json::as_u64)
        .ok_or("probe_iters must be a positive integer")?;
    let probe = doc.get("probe_ns").ok_or("probe_ns object missing")?;
    for key in ["probe_hit", "probe_miss", "insert_evict"] {
        let v = probe
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("probe_ns.{key} must be a number"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("probe_ns.{key} must be finite and non-negative"));
        }
    }
    match doc.get("walks_per_sec") {
        Some(Json::Obj(fields)) if !fields.is_empty() => {
            for (k, v) in fields {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("walks_per_sec.{k} must be a number"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("walks_per_sec.{k} must be finite and non-negative"));
                }
            }
        }
        _ => return Err("walks_per_sec must be a non-empty object".into()),
    }
    // Optional: measured native throughput. Baselines recorded before
    // the native backend existed lack the object entirely; when present
    // it must be well-formed.
    match doc.get("native_walks_per_sec") {
        None => {}
        Some(Json::Obj(fields)) => {
            for (k, v) in fields {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("native_walks_per_sec.{k} must be a number"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "native_walks_per_sec.{k} must be finite and non-negative"
                    ));
                }
            }
        }
        _ => return Err("native_walks_per_sec must be an object when present".into()),
    }
    let wc = doc
        .get("fig18_wall_clock_s")
        .and_then(Json::as_f64)
        .ok_or("fig18_wall_clock_s must be a number")?;
    if !wc.is_finite() || wc < 0.0 {
        return Err("fig18_wall_clock_s must be finite and non-negative".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(probe_miss: f64, fa_opt: f64, wall: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"metal-bench-suite/1","scale":"ci","probe_iters":50000,
                "probe_ns":{{"probe_hit":47.4,"probe_miss":{probe_miss},"insert_evict":117.0}},
                "walks_per_sec":{{"fa-opt":{fa_opt},"metal":485880.0}},
                "fig18_wall_clock_s":{wall}}}"#
        ))
        .expect("test doc parses")
    }

    #[test]
    fn floors_absorb_small_absolute_jitter() {
        // Each metric is past the ratio gate (>2x worse) but under its
        // class's absolute floor: a 10 ns path +14 ns, a tiny
        // throughput -50k walks/s, a 0.2 s sweep +0.35 s. The floor
        // must absorb all three.
        let base = doc(10.0, 90_000.0, 0.2);
        let new = doc(24.0, 40_000.0, 0.55);
        let report = compare(&base, &new);
        assert!(
            !report.regressed(),
            "noise-floor gate flagged jitter: {:?}",
            report
                .diffs
                .iter()
                .filter(|d| d.regressed)
                .map(|d| d.describe())
                .collect::<Vec<_>>()
        );
        // The ratio alone would have tripped without the floor.
        assert!(report.diffs.iter().any(|d| d.ratio > GATE_RATIO));
    }

    #[test]
    fn real_slowdowns_still_gate() {
        let base = doc(29.9, 275_043.0, 0.83);
        // Probe path went 4x, throughput halved, sweep doubled: every
        // delta clears both the ratio and its floor.
        let new = doc(120.0, 130_000.0, 1.9);
        let report = compare(&base, &new);
        let names: Vec<&str> = report
            .diffs
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.name.as_str())
            .collect();
        assert!(names.contains(&"probe_ns.probe_miss"), "{names:?}");
        assert!(names.contains(&"walks_per_sec.fa-opt"), "{names:?}");
        assert!(names.contains(&"fig18_wall_clock_s"), "{names:?}");
    }

    #[test]
    fn improvement_never_gates() {
        let base = doc(29.9, 275_043.0, 0.83);
        let new = doc(12.0, 600_000.0, 0.4);
        assert!(!compare(&base, &new).regressed());
    }

    #[test]
    fn floors_by_class() {
        assert_eq!(noise_floor("probe_ns.probe_hit"), 15.0);
        assert_eq!(noise_floor("walks_per_sec.metal"), 100_000.0);
        assert_eq!(noise_floor("native_walks_per_sec.metal"), 100_000.0);
        assert_eq!(noise_floor("fig18_wall_clock_s"), 0.5);
    }

    fn with_native(mut doc: Json, metal: f64) -> Json {
        if let Json::Obj(fields) = &mut doc {
            fields.push((
                "native_walks_per_sec".into(),
                Json::Obj(vec![("metal".into(), Json::Num(metal))]),
            ));
        }
        doc
    }

    #[test]
    fn native_metric_is_optional_but_validated_and_gated() {
        let bare = doc(29.9, 275_043.0, 0.83);
        // Absent entirely: old baselines stay valid and ungated.
        validate(&bare).expect("baseline without native metrics validates");
        let fresh = with_native(doc(29.9, 275_043.0, 0.83), 400_000.0);
        validate(&fresh).expect("native_walks_per_sec object validates");
        assert!(
            compare(&bare, &fresh)
                .diffs
                .iter()
                .all(|d| !d.name.starts_with("native_walks_per_sec.")),
            "one-sided native metrics are skipped"
        );

        // Shared on both sides: a collapse past ratio and floor gates.
        let base = with_native(doc(29.9, 275_043.0, 0.83), 400_000.0);
        let slow = with_native(doc(29.9, 275_043.0, 0.83), 120_000.0);
        let report = compare(&base, &slow);
        assert!(report
            .diffs
            .iter()
            .any(|d| d.name == "native_walks_per_sec.metal" && d.regressed));

        // Malformed when present: schema error.
        let mut bad = doc(29.9, 275_043.0, 0.83);
        if let Json::Obj(fields) = &mut bad {
            fields.push(("native_walks_per_sec".into(), Json::str("fast")));
        }
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn missing_metrics_are_skipped_not_failed() {
        let base = doc(29.9, 275_043.0, 0.83);
        let mut trimmed = doc(29.9, 275_043.0, 0.83);
        if let Json::Obj(fields) = &mut trimmed {
            fields.retain(|(k, _)| k != "fig18_wall_clock_s");
        }
        let report = compare(&base, &trimmed);
        assert!(report.diffs.iter().all(|d| d.name != "fig18_wall_clock_s"));
    }
}
