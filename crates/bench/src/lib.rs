//! # metal-bench — harness utilities for regenerating the paper's figures
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index); this library
//! holds what they share: command-line scale selection, the
//! workload × design sweep, and CSV output.
//!
//! Output convention: every binary prints a CSV with a header row to
//! stdout, prefixed by `#`-comment lines describing the experiment and
//! the paper's expectation, so the harness output is both human-checkable
//! and machine-parsable.

pub mod gate;
pub mod micro;

use metal_core::models::DesignSpec;
use metal_core::native::NativeMetrics;
use metal_core::runner::{
    run_design, Backend, ObsConfig, RunConfig, RunReport, DEFAULT_SHARD_WALKS,
};
use metal_core::IxConfig;
use metal_obs::manifest::RunManifest;
use metal_obs::watchdog::{analysis_document, scan_analysis, WatchdogConfig};
use metal_obs::Json;
use metal_obs::{
    render_html, validate_analysis, AnalysisRegistry, ChromeTraceSink, ChromeTraceWriter,
    FlightRecorder, JsonlSink, JsonlWriter, MetricsRegistry, DEFAULT_FLIGHT_CAPACITY,
};
use metal_sim::epoch::EpochSpec;
use metal_sim::obs::{shared, EventSink, MultiSink};
use metal_sim::stats::RunStats;
use metal_workloads::{BuiltWorkload, Scale, Workload};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Process exit codes shared by every harness binary (`analyze`,
/// `trace_dump`, `bench_suite`, the figure binaries). The full table is
/// documented in PERFORMANCE.md.
pub mod exit {
    /// Success.
    pub const OK: i32 = 0;
    /// A validation gate failed (conservation, `--check-hits`,
    /// `--deny-alerts`, forged-input detection).
    pub const VALIDATION: i32 = 1;
    /// Usage or I/O error: bad flags, unreadable/unwritable paths,
    /// malformed trace lines ([`crate::fail`] exits with this).
    pub const USAGE_IO: i32 = 2;
    /// A structurally malformed schema-tagged document (baseline or
    /// output of the wrong shape/version).
    pub const SCHEMA: i32 = 3;
    /// A tracked performance regression past the gate threshold.
    pub const REGRESSION: i32 = 4;
}

/// Prints a contextful error and exits with [`exit::USAGE_IO`]. The
/// harness binaries use this for user-facing I/O and parse failures (bad
/// paths, unreadable input) where a panic's backtrace would bury the
/// actual problem; internal invariant violations still panic.
pub fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(exit::USAGE_IO);
}

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset/run scale.
    pub scale: Scale,
    /// Cache capacity in bytes for every design (paper default: 64 kB).
    pub cache_bytes: usize,
    /// Simulation worker threads (`0` = all available cores). Seeds from
    /// the `METAL_SHARDS` environment variable; `--shards N` overrides.
    /// Never changes results, only wall-clock time.
    pub shards: usize,
    /// Logical-shard grain (`--shard-walks N`). The default (unbounded)
    /// keeps the serial single-engine methodology; a finite grain opts
    /// into partitioned-accelerator semantics and *changes results* (see
    /// `metal_core::runner`'s module docs).
    pub shard_walks: u64,
    /// `--trace-out PATH`: write a JSONL event trace to PATH and a
    /// Chrome `trace_event` export next to it (`PATH` with a
    /// `.chrome.json` extension). Observe-only; CSV output is unchanged.
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out PATH`: write a run-manifest JSON (configuration,
    /// seed, git revision, wall clock, full per-design statistics and
    /// aggregated event metrics) to PATH.
    pub metrics_out: Option<PathBuf>,
    /// `--analyze-out PATH`: run the in-process forensic analyzers
    /// (entry ledger, reuse-distance profile, miss taxonomy, eviction
    /// regret) and write a schema-tagged `ANALYSIS.json` to PATH plus a
    /// self-contained HTML report next to it (PATH with an `.html`
    /// extension). Observe-only; CSV output is unchanged.
    pub analyze_out: Option<PathBuf>,
    /// `--verify`: after each workload, re-run a subsample of it through
    /// `metal-verify`'s reference accounting cross-check (observe-only;
    /// diagnostics go to stderr and the CSV on stdout is unchanged).
    /// Aborts the binary on any divergence.
    pub verify: bool,
    /// `--epoch SPEC`: slice telemetry into deterministic windows
    /// (`cycles:N` / `walks:M` / bare integer = walks) for the analysis
    /// series, watchdogs and heartbeat. Observe-only.
    pub epoch: Option<EpochSpec>,
    /// `--series-out PATH`: write the per-epoch window series as a
    /// standalone schema-tagged JSON document (requires `--epoch`).
    pub series_out: Option<PathBuf>,
    /// `--flight-out PATH`: keep a fixed-size flight-recorder ring of
    /// recent raw events per design and dump it (trace JSONL) to PATH on
    /// panic, on a watchdog alert, or at session end.
    pub flight_out: Option<PathBuf>,
    /// `--backend sim|native`: execution backend. `sim` (default) models
    /// the walks on the cycle-level simulator; `native` executes them
    /// against paged B+tree storage and measures wall-clock/page I/O.
    /// Both agree exactly on semantic outcomes; the native backend
    /// supports the lane-shared designs (`stream`, `metal-ix`, `metal`).
    pub backend: Backend,
    /// `--mlp-width N`: memory-level-parallelism window — how many walks
    /// each worker keeps in flight (default 1 = serial). The simulator
    /// overlaps that many DRAM waits per lane; the native backend runs
    /// the same window as a software-pipelined prefetch scheduler.
    /// Semantic outcomes are width-invariant; only timing (sim) and
    /// measured throughput / I/O attribution (native) change.
    pub mlp_width: usize,
}

/// The `METAL_SHARDS` worker-count override, `0` (= all cores) when the
/// variable is unset or unparsable.
pub fn env_shards() -> usize {
    std::env::var("METAL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::bench(),
            cache_bytes: 64 * 1024,
            shards: env_shards(),
            shard_walks: DEFAULT_SHARD_WALKS,
            trace_out: None,
            metrics_out: None,
            analyze_out: None,
            verify: false,
            epoch: None,
            series_out: None,
            flight_out: None,
            backend: Backend::Sim,
            mlp_width: 1,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`:
    ///
    /// - `--scale ci|bench|paper`
    /// - `--keys N`, `--walks N`, `--depth N`, `--seed N`
    /// - `--cache-kb N`
    /// - `--shards N` (worker threads; 0 = all cores; also settable via
    ///   `METAL_SHARDS`)
    /// - `--shard-walks N` (logical-shard grain; opt-in, changes the
    ///   simulated machine model; 0 = unbounded default)
    /// - `--trace-out PATH` (JSONL event trace + Chrome export)
    /// - `--metrics-out PATH` (run-manifest JSON)
    /// - `--analyze-out PATH` (forensic `ANALYSIS.json` + HTML report)
    /// - `--verify` (subsampled reference cross-check per workload)
    ///
    /// Unknown flags are ignored so figure-specific binaries can add
    /// their own.
    ///
    /// `--help`/`-h` prints the shared flag reference (plus pointers to
    /// README.md and PERFORMANCE.md) and exits; [`parse_from`] stays pure
    /// so it remains testable.
    ///
    /// [`parse_from`]: HarnessArgs::parse_from
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print_usage();
            std::process::exit(0);
        }
        Self::parse_from(args)
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_default();
                    out.scale = match v.as_str() {
                        "ci" => Scale::ci(),
                        "bench" => Scale::bench(),
                        "paper" => Scale::paper(),
                        other => panic!("unknown scale '{other}' (ci|bench|paper)"),
                    };
                }
                "--keys" => out.scale.keys = next_u64(&mut it, "--keys"),
                "--walks" => out.scale.walks = next_u64(&mut it, "--walks"),
                "--depth" => out.scale.depth = next_u64(&mut it, "--depth") as u8,
                "--seed" => out.scale.seed = next_u64(&mut it, "--seed"),
                "--cache-kb" => out.cache_bytes = next_u64(&mut it, "--cache-kb") as usize * 1024,
                "--shards" => out.shards = next_u64(&mut it, "--shards") as usize,
                "--shard-walks" => {
                    out.shard_walks = match next_u64(&mut it, "--shard-walks") {
                        0 => DEFAULT_SHARD_WALKS,
                        n => n,
                    }
                }
                "--trace-out" => {
                    out.trace_out = Some(PathBuf::from(next_str(&mut it, "--trace-out")))
                }
                "--metrics-out" => {
                    out.metrics_out = Some(PathBuf::from(next_str(&mut it, "--metrics-out")))
                }
                "--analyze-out" => {
                    out.analyze_out = Some(PathBuf::from(next_str(&mut it, "--analyze-out")))
                }
                "--verify" => out.verify = true,
                "--epoch" => {
                    let v = next_str(&mut it, "--epoch");
                    out.epoch =
                        Some(EpochSpec::parse(&v).unwrap_or_else(|e| panic!("--epoch {v}: {e}")));
                }
                "--series-out" => {
                    out.series_out = Some(PathBuf::from(next_str(&mut it, "--series-out")))
                }
                "--flight-out" => {
                    out.flight_out = Some(PathBuf::from(next_str(&mut it, "--flight-out")))
                }
                "--backend" => {
                    let v = next_str(&mut it, "--backend");
                    out.backend = match v.as_str() {
                        "sim" => Backend::Sim,
                        "native" => Backend::Native,
                        other => panic!("unknown backend '{other}' (sim|native)"),
                    };
                }
                "--mlp-width" => {
                    out.mlp_width = match next_u64(&mut it, "--mlp-width") as usize {
                        0 => panic!("--mlp-width must be at least 1"),
                        w => w,
                    }
                }
                _ => {}
            }
        }
        if out.series_out.is_some() && out.epoch.is_none() {
            panic!("--series-out requires --epoch (the series is windowed by definition)");
        }
        out
    }

    /// The execution half of these arguments as a [`RunConfig`] (worker
    /// threads + shard grain). Lanes are workload-specific, so
    /// `run_workload`/`run_one` fill them in per workload.
    pub fn run_config(&self) -> RunConfig {
        RunConfig::default()
            .with_shards(self.shards)
            .with_shard_walks(self.shard_walks.max(1))
            .with_epoch(self.epoch)
            .with_backend(self.backend)
            .with_mlp_width(self.mlp_width.max(1))
    }
}

/// Prints the flag reference shared by every figure binary.
fn print_usage() {
    println!(
        "Shared figure-harness flags (unknown flags are ignored):\n\
         \n\
           --scale ci|bench|paper   workload scale preset (default: bench)\n\
           --keys N                 override keyspace size\n\
           --walks N                override walk count\n\
           --depth N                override index depth\n\
           --seed N                 override workload RNG seed\n\
           --cache-kb N             IX-cache capacity in KiB (default: 64)\n\
           --shards N               worker threads; 0 = all cores\n\
           --shard-walks N          logical-shard grain (opt-in machine model)\n\
           --trace-out PATH         write a JSONL event trace (+ Chrome export)\n\
           --metrics-out PATH       write a run-manifest JSON\n\
           --analyze-out PATH       write forensic ANALYSIS.json + HTML report\n\
           --verify                 cross-check a subsample against metal-verify\n\
           --epoch SPEC             window telemetry (cycles:N | walks:M | M)\n\
           --series-out PATH        write the per-epoch series JSON (needs --epoch)\n\
           --flight-out PATH        flight-recorder ring, dumped as trace JSONL\n\
           --backend sim|native     execution backend (default: sim); native\n\
                                    executes paged B+tree nodes for real\n\
           --mlp-width N            walks kept in flight per worker (default: 1\n\
                                    = serial; semantics are width-invariant)\n\
         \n\
         Environment: METAL_SHARDS (worker-thread default),\n\
         METAL_HEARTBEAT_SECS (progress heartbeat; 0 disables).\n\
         \n\
         The full CLI reference lives in README.md; the tracked performance\n\
         baseline and bench_suite workflow are documented in PERFORMANCE.md."
    );
}

fn next_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
}

fn next_str(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| panic!("{flag} needs an argument"))
}

/// Heartbeat period from `METAL_HEARTBEAT_SECS` (default 5; 0 disables).
fn heartbeat_period() -> Option<Duration> {
    let secs = std::env::var("METAL_HEARTBEAT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    (secs > 0).then(|| Duration::from_secs(secs))
}

/// Background stderr progress reporter; exits when its `Session` drops
/// the channel sender.
struct Heartbeat {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn spawn(
        run: String,
        scope: Arc<Mutex<String>>,
        progress: Arc<AtomicU64>,
        epoch_gauge: Option<Arc<AtomicU64>>,
        stall_cycles: Arc<AtomicU64>,
        total_cycles: Arc<AtomicU64>,
        period: Duration,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut last_walks = 0u64;
            let mut last_stall = 0u64;
            let mut last_total = 0u64;
            let mut last_beat = Instant::now();
            while let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(period) {
                // Long sessions run many scoped batches back to back;
                // without the active scope the heartbeat can't say
                // *which* workload/design the session is stuck in.
                let scope = scope.lock().map(|s| s.clone()).unwrap_or_default();
                let at = if scope.is_empty() {
                    run.clone()
                } else {
                    format!("{run}:{scope}")
                };
                let walks = progress.load(Ordering::Relaxed);
                let dt = last_beat.elapsed().as_secs_f64().max(1e-9);
                let rate = (walks.saturating_sub(last_walks)) as f64 / dt;
                last_walks = walks;
                last_beat = Instant::now();
                // Same observe-only gauge discipline as the walk
                // counter: the engines add exposed-stall and attributed
                // cycles as walks retire, the beat reports the delta's
                // stall share since the previous beat.
                let stall_now = stall_cycles.load(Ordering::Relaxed);
                let total_now = total_cycles.load(Ordering::Relaxed);
                let d_total = total_now.saturating_sub(last_total);
                let stall = if d_total > 0 {
                    let d_stall = stall_now.saturating_sub(last_stall);
                    format!(
                        ", {:.1}% DRAM stall since last beat",
                        100.0 * d_stall as f64 / d_total as f64
                    )
                } else {
                    String::new()
                };
                last_stall = stall_now;
                last_total = total_now;
                let epoch = epoch_gauge
                    .as_ref()
                    .map(|g| format!(", epoch {}", g.load(Ordering::Relaxed)))
                    .unwrap_or_default();
                eprintln!(
                    "# [{at}] heartbeat: {walks} walks simulated, \
                     {rate:.0} walks/s since last beat{stall}, {:.0}s elapsed{epoch}",
                    started.elapsed().as_secs_f64()
                );
            }
        });
        Heartbeat {
            stop: Some(tx),
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        drop(self.stop.take()); // disconnects the channel → thread exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-binary observability session: owns the trace writers, metrics
/// registry, run manifest and heartbeat configured by [`HarnessArgs`],
/// and hands out [`RunConfig`]s wired to them.
///
/// Usage pattern (see any figure binary):
///
/// ```ignore
/// let args = HarnessArgs::parse();
/// let mut session = Session::new("fig20_breakdown", &args);
/// let report = run_one(w, args.scale, &spec, None, session.config("spmm/ix"));
/// session.record("spmm/ix", &report.design, &report.stats);
/// session.finish();
/// ```
///
/// With neither `--trace-out` nor `--metrics-out` the sink factory is
/// absent and simulations run exactly as without a session (only the
/// progress counter is attached, which no statistic reads).
pub struct Session {
    run: String,
    args: HarnessArgs,
    manifest: RunManifest,
    started: Instant,
    jsonl: Option<Arc<JsonlWriter>>,
    chrome: Option<Arc<ChromeTraceWriter>>,
    chrome_path: Option<PathBuf>,
    registry: Option<Arc<MetricsRegistry>>,
    analysis: Option<Arc<AnalysisRegistry>>,
    flight: Option<Arc<FlightRecorder>>,
    progress: Arc<AtomicU64>,
    /// Highest epoch any analyzer has entered (heartbeat's gauge).
    epoch_gauge: Arc<AtomicU64>,
    /// Cumulative exposed DRAM-stall cycles across the session's runs
    /// (heartbeat's stall-fraction numerator; observe-only).
    stall_cycles: Arc<AtomicU64>,
    /// Cumulative attributed walk cycles (the fraction's denominator).
    total_cycles: Arc<AtomicU64>,
    /// The most recent [`Session::config`] scope, shown by the heartbeat.
    hb_scope: Arc<Mutex<String>>,
    _heartbeat: Option<Heartbeat>,
}

impl Session {
    /// Opens a session for binary `run`, creating the output files named
    /// by `args` up front (so path errors surface before simulating).
    pub fn new(run: &str, args: &HarnessArgs) -> Session {
        let mut manifest = RunManifest::new(run);
        manifest.arg("scale_keys", args.scale.keys);
        manifest.arg("scale_walks", args.scale.walks);
        manifest.arg("scale_depth", args.scale.depth);
        manifest.arg("seed", args.scale.seed);
        manifest.arg("cache_bytes", args.cache_bytes);
        manifest.arg("shards", args.shards);
        manifest.arg("shard_walks", args.shard_walks);
        if let Some(epoch) = args.epoch {
            manifest.arg("epoch", epoch.render());
        }
        if args.backend == Backend::Native {
            manifest.arg("backend", "native");
        }
        if args.mlp_width > 1 {
            manifest.arg("mlp_width", args.mlp_width);
        }

        let jsonl = args.trace_out.as_ref().map(|p| {
            JsonlWriter::create(p)
                .unwrap_or_else(|e| fail(format_args!("--trace-out {}: {e}", p.display())))
        });
        let chrome_path = args
            .trace_out
            .as_ref()
            .map(|p| p.with_extension("chrome.json"));
        let chrome = chrome_path.as_ref().map(|_| ChromeTraceWriter::new());
        let registry = args.metrics_out.as_ref().map(|_| MetricsRegistry::new());
        let analysis = (args.analyze_out.is_some() || args.series_out.is_some())
            .then(|| AnalysisRegistry::windowed((args.cache_bytes / 64).max(1), args.epoch));
        let flight = args
            .flight_out
            .as_ref()
            .map(|_| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY));
        if let (Some(rec), Some(path)) = (&flight, &args.flight_out) {
            // Panic-path dump: chain onto the existing hook so the
            // default backtrace still prints, then flush the ring.
            let rec = Arc::clone(rec);
            let path = path.clone();
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                prev(info);
                match rec.dump_to(&path) {
                    Ok(()) => eprintln!("# panic: dumped flight recorder to {}", path.display()),
                    Err(e) => eprintln!("# panic: flight dump {}: {e}", path.display()),
                }
            }));
        }

        let progress = Arc::new(AtomicU64::new(0));
        let epoch_gauge = Arc::new(AtomicU64::new(0));
        let stall_cycles = Arc::new(AtomicU64::new(0));
        let total_cycles = Arc::new(AtomicU64::new(0));
        let hb_scope = Arc::new(Mutex::new(String::new()));
        let heartbeat = heartbeat_period().map(|period| {
            Heartbeat::spawn(
                run.to_string(),
                hb_scope.clone(),
                progress.clone(),
                args.epoch.map(|_| epoch_gauge.clone()),
                stall_cycles.clone(),
                total_cycles.clone(),
                period,
            )
        });

        Session {
            run: run.to_string(),
            args: args.clone(),
            manifest,
            started: Instant::now(),
            jsonl,
            chrome,
            chrome_path,
            registry,
            analysis,
            flight,
            progress,
            epoch_gauge,
            stall_cycles,
            total_cycles,
            hb_scope,
            _heartbeat: heartbeat,
        }
    }

    /// The scope label the heartbeat currently reports (the argument of
    /// the most recent [`Session::config`] call).
    pub fn active_scope(&self) -> String {
        self.hb_scope.lock().map(|s| s.clone()).unwrap_or_default()
    }

    /// A [`RunConfig`] for one simulation batch, wired to this session's
    /// sinks. `scope` labels the batch in traces and manifests (use
    /// `"workload"` or `"workload/variant"`); pass the same scope to
    /// [`Session::record`] so `trace-dump --check-hits` can match trace
    /// events to manifest reports.
    pub fn config(&self, scope: &str) -> RunConfig {
        if let Ok(mut s) = self.hb_scope.lock() {
            *s = scope.to_string();
        }
        let mut obs = ObsConfig {
            sink_factory: None,
            progress: Some(self.progress.clone()),
            stall_cycles: Some(self.stall_cycles.clone()),
            total_cycles: Some(self.total_cycles.clone()),
        };
        if self.jsonl.is_some()
            || self.registry.is_some()
            || self.analysis.is_some()
            || self.flight.is_some()
        {
            let jsonl = self.jsonl.clone();
            let chrome = self.chrome.clone();
            let registry = self.registry.clone();
            let analysis = self.analysis.clone();
            let flight = self.flight.clone();
            let epoch_gauge = self.epoch_gauge.clone();
            let scope = scope.to_string();
            obs.sink_factory = Some(Arc::new(move |ctx| {
                let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
                if let Some(w) = &jsonl {
                    sinks.push(Box::new(JsonlSink::new(
                        w.clone(),
                        &scope,
                        &ctx.design,
                        ctx.shard,
                    )));
                }
                if let Some(c) = &chrome {
                    sinks.push(Box::new(ChromeTraceSink::new(
                        c.clone(),
                        &ctx.design,
                        ctx.shard,
                    )));
                }
                if let Some(r) = &registry {
                    sinks.push(Box::new(r.sink()));
                }
                if let Some(a) = &analysis {
                    sinks.push(Box::new(
                        a.sink_with_gauge(&ctx.design, epoch_gauge.clone()),
                    ));
                }
                if let Some(f) = &flight {
                    sinks.push(Box::new(f.sink(&ctx.design, ctx.shard)));
                }
                (!sinks.is_empty()).then(|| shared(MultiSink::new(sinks)))
            }));
        }
        self.args.run_config().with_obs(obs)
    }

    /// Adds one simulated (scope, design) result to the manifest.
    pub fn record(&mut self, scope: &str, design: &str, stats: &RunStats) {
        self.manifest.push_report(scope, design, stats);
    }

    /// Adds one (scope, design) result *with* its measured native
    /// metrics when the report carries them (native-backend runs), so
    /// `analyze` can render measured walks/sec and page-I/O behaviour
    /// side by side with the modeled numbers. Identical to
    /// [`Session::record`] for simulator reports.
    pub fn record_report(&mut self, scope: &str, design: &str, report: &RunReport) {
        self.record(scope, design, &report.stats);
        if let Some(m) = &report.native {
            self.manifest
                .attach_native(scope, design, native_metrics_json(m));
        }
    }

    /// Total walks simulated so far (the heartbeat's counter).
    pub fn walks_simulated(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }
}

/// Serializes measured native-execution metrics as the manifest's
/// `reports[].native` object (`analyze` consumes this schema for the
/// measured-vs-modeled report table).
pub fn native_metrics_json(m: &NativeMetrics) -> Json {
    Json::Obj(vec![
        ("wall_ns".into(), Json::UInt(m.wall_ns)),
        ("walks".into(), Json::UInt(m.walks)),
        ("walks_per_sec".into(), Json::Num(m.walks_per_sec())),
        ("page_reads".into(), Json::UInt(m.page_reads)),
        ("page_writes".into(), Json::UInt(m.page_writes)),
        ("hot_hits".into(), Json::UInt(m.hot_hits)),
        ("cold_reads".into(), Json::UInt(m.cold_reads)),
        ("node_writes".into(), Json::UInt(m.node_writes)),
        ("pages".into(), Json::UInt(m.pages)),
        ("free_pages".into(), Json::UInt(m.free_pages)),
        // Scoped phase timers — independent gauges, not a partition of
        // wall_ns; `page_io_fraction` is the measured analogue of the
        // simulator's modeled DRAM-stall fraction.
        ("page_read_ns".into(), Json::UInt(m.page_read_ns)),
        ("decode_ns".into(), Json::UInt(m.decode_ns)),
        ("ix_probe_ns".into(), Json::UInt(m.ix_probe_ns)),
        ("node_scan_ns".into(), Json::UInt(m.node_scan_ns)),
        ("mutation_ns".into(), Json::UInt(m.mutation_ns)),
        ("staging_ns".into(), Json::UInt(m.staging_ns)),
        ("page_io_fraction".into(), Json::Num(m.page_io_fraction())),
    ])
}

impl Session {
    /// Closes the session: stops the heartbeat, stamps the wall clock,
    /// runs the watchdogs over the window series and writes the Chrome
    /// export, manifest, analysis, series and flight dump (each when
    /// requested).
    pub fn finish(mut self) {
        self.manifest.wall_clock_secs = self.started.elapsed().as_secs_f64();
        self.manifest.metrics = self.registry.as_ref().map(|r| r.snapshot());
        let analysis = self.analysis.as_ref().map(|reg| reg.snapshot());
        // Watchdogs run over whatever series the analyzers windowed;
        // without --epoch there are no windows and no alerts.
        let alerts = analysis
            .as_ref()
            .map(|a| scan_analysis(a, &WatchdogConfig::default()))
            .unwrap_or_default();
        for a in &alerts {
            eprintln!(
                "# ALERT [{}] {} at epoch {}: {}",
                a.design,
                a.kind.as_str(),
                a.epoch,
                a.detail
            );
        }
        self.manifest.alerts = alerts.clone();
        if let (Some(chrome), Some(path)) = (&self.chrome, &self.chrome_path) {
            if let Err(e) = chrome.save(path) {
                eprintln!("# warning: chrome trace {}: {e}", path.display());
            } else {
                eprintln!("# wrote chrome trace: {}", path.display());
            }
        }
        if let Some(p) = &self.args.trace_out {
            eprintln!("# wrote event trace: {}", p.display());
        }
        if let Some(p) = &self.args.metrics_out {
            if let Err(e) = self.manifest.save(p) {
                eprintln!("# warning: manifest {}: {e}", p.display());
            } else {
                eprintln!("# wrote run manifest: {}", p.display());
            }
        }
        if let (Some(p), Some(analysis)) = (&self.args.series_out, &analysis) {
            match analysis.series_json() {
                Some(doc) => {
                    if let Err(e) = std::fs::write(p, doc.render() + "\n") {
                        fail(format_args!("--series-out {}: {e}", p.display()));
                    }
                    eprintln!("# wrote telemetry series: {}", p.display());
                }
                None => eprintln!(
                    "# warning: --series-out {}: no windows recorded (nothing simulated?)",
                    p.display()
                ),
            }
        }
        if let (Some(p), Some(analysis)) = (&self.args.analyze_out, &analysis) {
            let doc = analysis_document(analysis, &alerts);
            // The validator runs on our own output so an accounting bug
            // (including window-sum conservation) fails the producing
            // run, not just a later CI check. Alerts are data here; only
            // `analyze --deny-alerts` turns them into failures.
            if let Err(e) = validate_analysis(&doc) {
                fail(format_args!("--analyze-out self-validation: {e}"));
            }
            if let Err(e) = std::fs::write(p, doc.render() + "\n") {
                fail(format_args!("--analyze-out {}: {e}", p.display()));
            }
            eprintln!("# wrote forensic analysis: {}", p.display());
            let html_path = p.with_extension("html");
            let html = render_html(analysis, &format!("METAL forensics — {}", self.run));
            if let Err(e) = std::fs::write(&html_path, html) {
                fail(format_args!("--analyze-out {}: {e}", html_path.display()));
            }
            eprintln!("# wrote forensic report: {}", html_path.display());
        }
        if let (Some(p), Some(rec)) = (&self.args.flight_out, &self.flight) {
            // Session end is the on-demand dump; an alert above makes
            // the same dump the anomaly post-mortem.
            if let Err(e) = rec.dump_to(p) {
                fail(format_args!("--flight-out {}: {e}", p.display()));
            }
            let why = if alerts.is_empty() {
                "session end"
            } else {
                "watchdog alert"
            };
            eprintln!("# wrote flight recorder ({why}): {}", p.display());
        }
    }
}

/// The set of designs most figures compare, sized to `cache_bytes` and
/// configured with the workload's Table 2 descriptors.
pub fn figure_designs(built: &BuiltWorkload, cache_bytes: usize) -> Vec<(String, DesignSpec)> {
    let entries = (cache_bytes / 64).max(16);
    let ix = IxConfig::with_capacity_bytes(cache_bytes);
    vec![
        ("stream".into(), DesignSpec::Stream),
        ("address".into(), DesignSpec::Address { entries, ways: 16 }),
        ("fa-opt".into(), DesignSpec::FaOpt { entries }),
        ("x-cache".into(), DesignSpec::XCache { entries, ways: 16 }),
        ("metal-ix".into(), DesignSpec::MetalIx { ix }),
        (
            "metal".into(),
            DesignSpec::Metal {
                ix,
                descriptors: built.descriptors.clone(),
                tune: true,
                batch_walks: built.batch_walks,
            },
        ),
    ]
}

/// Runs one workload under all figure designs. `cfg` carries the
/// execution knobs (worker threads, shard grain — see
/// [`HarnessArgs::run_config`]); its lane count is overridden by the
/// workload's tile count.
pub fn run_workload(
    workload: Workload,
    scale: Scale,
    cache_bytes: usize,
    cfg: RunConfig,
) -> Vec<(String, RunReport)> {
    let built = workload.build(scale);
    let exp = built.experiment();
    let cfg = cfg.with_lanes(built.tiles);
    let (names, specs): (Vec<String>, Vec<DesignSpec>) =
        figure_designs(&built, cache_bytes).into_iter().unzip();
    let reports = metal_core::runner::run_designs_parallel(&specs, &exp, &cfg);
    names.into_iter().zip(reports).collect()
}

/// Runs an already-built workload under all figure designs (the
/// [`run_workload`] core for workloads outside the Table 2 roster, e.g.
/// the parameterized `uniform_std_v1` CRUD mix).
pub fn run_built(
    built: &BuiltWorkload,
    cache_bytes: usize,
    cfg: RunConfig,
) -> Vec<(String, RunReport)> {
    let exp = built.experiment();
    let cfg = cfg.with_lanes(built.tiles);
    let (names, specs): (Vec<String>, Vec<DesignSpec>) =
        figure_designs(built, cache_bytes).into_iter().unzip();
    let reports = metal_core::runner::run_designs_parallel(&specs, &exp, &cfg);
    names.into_iter().zip(reports).collect()
}

/// The write-ratio sweep CSV header (`fig_write_sweep`).
pub fn write_sweep_header() -> String {
    csv_line([
        "write_ratio",
        "design",
        "miss_rate",
        "speedup",
        "found_walks",
        "write_walks",
        "node_splits",
        "node_merges",
    ])
}

/// The write-ratio sweep rows for one ratio: per-design miss rate,
/// speedup over streaming, and the result/structural counters that a
/// stale cached short-circuit would skew. Shared by the
/// `fig_write_sweep` binary and the golden-file regression test.
pub fn write_sweep_rows(ratio: u8, reports: &[(String, RunReport)]) -> Vec<String> {
    let stream = by_design(reports, "stream");
    reports
        .iter()
        .map(|(name, r)| {
            csv_line([
                ratio.to_string(),
                name.clone(),
                f3(r.stats.miss_rate()),
                f3(r.speedup_vs(stream)),
                r.stats.found_walks.to_string(),
                r.stats.write_walks.to_string(),
                r.stats.node_splits.to_string(),
                r.stats.node_merges.to_string(),
            ])
        })
        .collect()
}

/// The `--verify` cross-check for one workload: rebuilds it at a
/// subsampled scale (bounded keys/walks, same seed and structure) and
/// runs every figure design through `metal-verify`'s reference
/// accounting model — observation must not perturb statistics, the
/// event trace must reconstruct them, and non-IX designs must emit no
/// IX events. Observe-only: nothing is written to stdout, so figure
/// CSVs are byte-identical with and without `--verify`.
///
/// Aborts (panics) on the first divergence: a figure produced from a
/// diverging simulator is worthless, so there is nothing sensible to
/// continue with.
pub fn verify_workload(workload: Workload, scale: Scale, cache_bytes: usize, cfg: &RunConfig) {
    let sub = scale
        .with_keys(scale.keys.min(8_000))
        .with_walks(scale.walks.min(1_000));
    let built = workload.build(sub);
    let exp = built.experiment();
    let cfg = cfg.clone().with_lanes(built.tiles);
    for (name, spec) in figure_designs(&built, cache_bytes) {
        if let Err(d) = metal_verify::design::check_design(&spec, &exp, &cfg) {
            panic!(
                "--verify: {}/{name} diverged from the reference accounting model: {d}",
                workload.name()
            );
        }
    }
    eprintln!(
        "# verify: {} cross-checked against the reference model (all designs, {} walks)",
        workload.name(),
        sub.walks
    );
}

/// Runs one workload under one design. `cfg` carries the execution knobs
/// as in [`run_workload`].
pub fn run_one(
    workload: Workload,
    scale: Scale,
    spec: &DesignSpec,
    lanes_override: Option<usize>,
    cfg: RunConfig,
) -> RunReport {
    let built = workload.build(scale);
    let exp = built.experiment();
    let cfg = cfg.with_lanes(lanes_override.unwrap_or(built.tiles));
    run_design(spec, &exp, &cfg)
}

/// Formats a CSV row, comma-separated, no trailing comma.
pub fn csv_line<S: AsRef<str>>(cells: impl IntoIterator<Item = S>) -> String {
    let row: Vec<String> = cells.into_iter().map(|s| s.as_ref().to_string()).collect();
    row.join(",")
}

/// Prints a CSV row, comma-separated, no trailing comma.
pub fn csv_row<S: AsRef<str>>(cells: impl IntoIterator<Item = S>) {
    println!("{}", csv_line(cells));
}

fn by_design<'a>(reports: &'a [(String, RunReport)], name: &str) -> &'a RunReport {
    reports
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, r)| r)
        .unwrap_or_else(|| panic!("design '{name}' missing from figure reports"))
}

/// The `fig_mlp` sweep axis: MLP window widths (walks in flight per
/// worker). Width 1 is the serial baseline every other width's speedup
/// is computed against.
pub const MLP_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The `fig_mlp` CSV header row.
pub fn fig_mlp_header() -> String {
    csv_line([
        "workload",
        "design",
        "mlp_width",
        "exec_cycles",
        "modeled_speedup",
        "found",
        "probes",
        "misses",
    ])
}

/// One `fig_mlp` row: the modeled cycle count at this width, its
/// speedup over the same design's serial (width-1) run, and the
/// semantic counters — which must not move anywhere along the sweep
/// (MLP is a pure performance mechanism). Shared by the `fig_mlp`
/// binary and the golden-file regression test, so the pinned bytes are
/// produced by the exact code that writes `results/fig_mlp.csv`.
pub fn fig_mlp_row(
    workload: &str,
    design: &str,
    width: usize,
    serial: &RunReport,
    r: &RunReport,
) -> String {
    csv_line([
        workload.to_string(),
        design.to_string(),
        width.to_string(),
        r.stats.exec_cycles.get().to_string(),
        f3(r.speedup_vs(serial)),
        r.stats.found_walks.to_string(),
        r.stats.probes.to_string(),
        r.stats.misses.to_string(),
    ])
}

/// The Fig. 15 CSV header row.
pub fn fig15_header() -> String {
    csv_line(["workload", "fa-opt", "x-cache", "metal-ix", "metal"])
}

/// One Fig. 15 data row (probe miss rate per design) from a
/// [`figure_designs`] report set. Shared by the `fig15_miss_rate`
/// binary and the golden-file regression test, so the pinned bytes are
/// produced by the exact code that writes `results/fig15_miss_rate.csv`.
pub fn fig15_row(workload: &str, reports: &[(String, RunReport)]) -> String {
    let mr = |name: &str| f3(by_design(reports, name).stats.miss_rate());
    csv_line([
        workload.to_string(),
        mr("fa-opt"),
        mr("x-cache"),
        mr("metal-ix"),
        mr("metal"),
    ])
}

/// The Fig. 18 CSV header row.
pub fn fig18_header() -> String {
    csv_line([
        "workload", "address", "fa-opt", "x-cache", "metal-ix", "metal",
    ])
}

/// One Fig. 18 data row (speedup over streaming) from a
/// [`figure_designs`] report set. Shared by the `fig18_speedup` binary
/// and the golden-file regression test.
pub fn fig18_row(workload: &str, reports: &[(String, RunReport)]) -> String {
    let stream = by_design(reports, "stream");
    let speedup = |name: &str| f3(by_design(reports, name).speedup_vs(stream));
    csv_line([
        workload.to_string(),
        speedup("address"),
        speedup("fa-opt"),
        speedup("x-cache"),
        speedup("metal-ix"),
        speedup("metal"),
    ])
}

/// Formats a float to three significant decimals for CSV cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> HarnessArgs {
        HarnessArgs::parse_from(s.split_whitespace().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = args("");
        assert_eq!(a.scale, Scale::bench());
        assert_eq!(a.cache_bytes, 64 * 1024);
    }

    #[test]
    fn scale_presets() {
        assert_eq!(args("--scale ci").scale, Scale::ci());
        assert_eq!(args("--scale paper").scale, Scale::paper());
    }

    #[test]
    fn numeric_overrides() {
        let a = args("--scale ci --keys 1000 --walks 500 --depth 6 --seed 3 --cache-kb 32");
        assert_eq!(a.scale.keys, 1000);
        assert_eq!(a.scale.walks, 500);
        assert_eq!(a.scale.depth, 6);
        assert_eq!(a.scale.seed, 3);
        assert_eq!(a.cache_bytes, 32 * 1024);
    }

    #[test]
    fn unknown_flags_ignored() {
        let a = args("--frobnicate 7 --keys 10");
        assert_eq!(a.scale.keys, 10);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_rejected() {
        let _ = args("--scale huge");
    }

    #[test]
    fn shard_flags_parse() {
        let a = args("--shards 4 --shard-walks 512");
        assert_eq!(a.shards, 4);
        assert_eq!(a.shard_walks, 512);
        let cfg = a.run_config();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.shard_walks, 512);
        // 0 and absence both mean the unbounded (single-engine) default.
        assert_eq!(args("--shard-walks 0").shard_walks, DEFAULT_SHARD_WALKS);
        assert_eq!(args("").shard_walks, DEFAULT_SHARD_WALKS);
    }

    #[test]
    fn backend_flag_parses() {
        assert_eq!(args("").backend, Backend::Sim);
        assert_eq!(args("--backend sim").backend, Backend::Sim);
        assert_eq!(args("--backend native").backend, Backend::Native);
        assert_eq!(
            args("--backend native").run_config().backend,
            Backend::Native
        );
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn bad_backend_rejected() {
        let _ = args("--backend hardware");
    }

    #[test]
    fn mlp_width_flag_parses() {
        assert_eq!(args("").mlp_width, 1);
        let a = args("--mlp-width 8");
        assert_eq!(a.mlp_width, 8);
        assert_eq!(a.run_config().mlp_width(), 8);
        assert_eq!(args("").run_config().mlp_width(), 1);
    }

    #[test]
    #[should_panic(expected = "--mlp-width must be at least 1")]
    fn zero_mlp_width_rejected() {
        let _ = args("--mlp-width 0");
    }

    #[test]
    fn analyze_out_flag_parses() {
        let a = args("--analyze-out out/ANALYSIS.json");
        assert_eq!(a.analyze_out, Some(PathBuf::from("out/ANALYSIS.json")));
        assert_eq!(args("").analyze_out, None);
    }

    #[test]
    fn epoch_flags_parse() {
        let a =
            args("--epoch walks:512 --series-out out/SERIES.json --flight-out out/flight.jsonl");
        assert_eq!(a.epoch, Some(EpochSpec::Walks(512)));
        assert_eq!(a.series_out, Some(PathBuf::from("out/SERIES.json")));
        assert_eq!(a.flight_out, Some(PathBuf::from("out/flight.jsonl")));
        assert_eq!(a.run_config().epoch, Some(EpochSpec::Walks(512)));
        assert_eq!(
            args("--epoch cycles:9000").epoch,
            Some(EpochSpec::Cycles(9000))
        );
        assert_eq!(args("").epoch, None);
    }

    #[test]
    #[should_panic(expected = "--series-out requires --epoch")]
    fn series_without_epoch_rejected() {
        let _ = args("--series-out out/SERIES.json");
    }

    #[test]
    fn heartbeat_scope_tracks_config_calls() {
        let session = Session::new("test_run", &args(""));
        assert_eq!(session.active_scope(), "");
        let _ = session.config("spmm/ix");
        assert_eq!(session.active_scope(), "spmm/ix");
        let _ = session.config("join/walk");
        assert_eq!(session.active_scope(), "join/walk");
    }

    #[test]
    fn run_one_smoke() {
        let scale = Scale::ci().with_keys(2000).with_walks(300);
        let r = run_one(
            Workload::Where,
            scale,
            &DesignSpec::Stream,
            None,
            RunConfig::default(),
        );
        assert_eq!(r.stats.walks, 300);
    }
}
