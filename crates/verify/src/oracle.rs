//! Executable reference oracle of the IX-cache spec.
//!
//! Two independent executables of §3.1's probe semantics, both flat
//! linear scans with none of `IxCache`'s machinery (no set
//! virtualization, no 64 B packing, no CLOCK metadata):
//!
//! - [`spec_probe`] predicts the exact outcome of the *next* probe from
//!   a residency snapshot: scan every resident segment, keep the
//!   deepest covering one, first-found on level ties. Valid in every
//!   regime — evictions change the snapshot, not the rule.
//! - [`HistoryOracle`] predicts probe outcomes from the *insert
//!   history* alone. It never forgets, so it only agrees with the cache
//!   when no capacity eviction can have happened; differential runs in
//!   the ample-capacity regime use it to detect entries that were
//!   spuriously dropped (a bug the snapshot scan, which trusts
//!   residency, cannot see).

use metal_core::ixcache::EntrySnapshot;
use metal_core::range::KeyRange;
use metal_sim::obs::WIDE_SET;

/// What the spec says a probe must return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecHit {
    /// Node id of the winning segment.
    pub node: u32,
    /// Level of the winning entry (leaf = 0).
    pub level: u8,
    /// The winning segment's exact range tag.
    pub range: KeyRange,
}

/// Predicts the outcome of `probe(index, key)` against a residency
/// snapshot by linear scan: an entry matches when any of its segments
/// covers the key (the first covering segment resolves the node); the
/// deepest-level match wins, and on equal levels the earliest entry in
/// scan order keeps the win (strictly-lower-level replacement, exactly
/// the hardware match stage's tie-break).
///
/// `probe_set` must be the set the cache would scan for this key
/// ([`metal_core::IxCache::probe_set`]); entries resident in *other*
/// narrow sets are deliberately not filtered out — a correctly placed
/// narrow entry covering `key` can only live in `probe_set`, so if the
/// scan ever wins with an entry from elsewhere, the cache has a
/// placement bug and the differential check reports the divergence.
pub fn spec_probe(
    snapshot: &[EntrySnapshot],
    index: u8,
    key: u64,
    probe_set: u32,
) -> Option<SpecHit> {
    let mut best: Option<(SpecHit, u32)> = None;
    for e in snapshot {
        if e.index != index || !e.span.covers(key) {
            continue;
        }
        let Some(&(range, node)) = e.segs.iter().find(|(r, _)| r.covers(key)) else {
            continue;
        };
        let hit = SpecHit {
            node,
            level: e.level,
            range,
        };
        if best.as_ref().is_none_or(|(b, _)| hit.level < b.level) {
            best = Some((hit, e.set));
        }
    }
    let (hit, set) = best?;
    debug_assert!(
        set == probe_set || set == WIDE_SET,
        "winning entry in set {set} is unreachable from probe set {probe_set}"
    );
    Some(hit)
}

/// The probe outcome implied by the insert history alone: deepest
/// covering insert wins. Node ids are returned as the full candidate
/// set at the winning level because the history carries no tie-break
/// order (two same-level inserts may cover the same key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryHit {
    /// Deepest level of any covering insert.
    pub level: u8,
    /// Every node inserted at that level whose range covers the key.
    pub nodes: Vec<u32>,
}

/// One recorded insert plus the invalidation ranges that have touched
/// it since. Invalidation is whole-segment granular in the cache, so
/// the oracle tracks taint conservatively: any overlap may legally
/// have killed any part of the record's residency.
#[derive(Debug, Clone)]
struct Rec {
    index: u8,
    level: u8,
    range: KeyRange,
    node: u32,
    /// Invalidation ranges applied after this insert that overlap it.
    killed: Vec<KeyRange>,
}

/// Append-only record of every insert, cleared by flush. With ample
/// capacity (no evictions possible) the cache must agree with this
/// oracle on every probe's hit/miss and level. Invalidations taint
/// overlapped records rather than delete them: a tainted record may or
/// may not survive in the cache (whole-segment over-invalidation is
/// allowed), so only untainted records carry a *mandatory* outcome.
#[derive(Debug, Default)]
pub struct HistoryOracle {
    inserted: Vec<Rec>,
}

impl HistoryOracle {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one insert op.
    pub fn insert(&mut self, index: u8, level: u8, range: KeyRange, node: u32) {
        self.inserted.push(Rec {
            index,
            level,
            range,
            node,
            killed: Vec::new(),
        });
    }

    /// Records a range invalidation: every earlier insert it overlaps
    /// (same index, matching level when filtered) becomes tainted. A
    /// later re-insert of the same node starts a fresh untainted
    /// record, exactly as re-admission revives the cache entry.
    pub fn invalidate(&mut self, index: u8, level: Option<u8>, range: KeyRange) {
        for r in &mut self.inserted {
            if r.index == index && level.is_none_or(|l| l == r.level) && range.overlaps(&r.range) {
                r.killed.push(range);
            }
        }
    }

    /// Forgets everything (mirrors `IxCache::flush`).
    pub fn flush(&mut self) {
        self.inserted.clear();
    }

    /// The deepest covering insert for `key`, with all same-level
    /// candidate nodes. Ignores taint — the pre-mutation view.
    pub fn probe(&self, index: u8, key: u64) -> Option<HistoryHit> {
        self.probe_filtered(index, key, false)
    }

    /// The deepest *definitely-live* covering insert for `key`: only
    /// untainted records qualify, so with ample capacity the cache
    /// MUST hit at least this deep — losing such an entry means an
    /// invalidation killed more than its granularity bound allows.
    pub fn probe_live(&self, index: u8, key: u64) -> Option<HistoryHit> {
        self.probe_filtered(index, key, true)
    }

    fn probe_filtered(&self, index: u8, key: u64, live_only: bool) -> Option<HistoryHit> {
        let mut best: Option<HistoryHit> = None;
        for r in &self.inserted {
            if r.index != index || !r.range.covers(key) || (live_only && !r.killed.is_empty()) {
                continue;
            }
            match &mut best {
                Some(b) if r.level > b.level => {}
                Some(b) if r.level == b.level => {
                    if !b.nodes.contains(&r.node) {
                        b.nodes.push(r.node);
                    }
                }
                _ => {
                    best = Some(HistoryHit {
                        level: r.level,
                        nodes: vec![r.node],
                    });
                }
            }
        }
        best
    }

    /// Whether a resident segment is justified by the history: some
    /// insert of the same `(index, level, node)` whose op range
    /// contains the segment (splitting produces sub-ranges of the op
    /// range; exact and coalesced packing keep it verbatim).
    pub fn justifies(&self, index: u8, level: u8, seg: &KeyRange, node: u32) -> bool {
        self.inserted.iter().any(|r| {
            r.index == index && r.level == level && r.node == node && r.range.contains(seg)
        })
    }

    /// Like [`justifies`](Self::justifies), but the justifying insert
    /// must not have been invalidated over the served tag: a hit whose
    /// tag overlaps every justifying record's kill set is stale — the
    /// cache served a short-circuit across a span a mutation revoked.
    pub fn justified_live(&self, index: u8, level: u8, tag: &KeyRange, node: u32) -> bool {
        self.inserted.iter().any(|r| {
            r.index == index
                && r.level == level
                && r.node == node
                && r.range.contains(tag)
                && !r.killed.iter().any(|k| k.overlaps(tag))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(u8, u8, u64, u64, u32, u32)]) -> Vec<EntrySnapshot> {
        // (index, level, lo, hi, node, set)
        entries
            .iter()
            .map(|&(index, level, lo, hi, node, set)| EntrySnapshot {
                index,
                level,
                span: KeyRange::new(lo, hi),
                segs: vec![(KeyRange::new(lo, hi), node)],
                payload_bytes: 64,
                pinned: false,
                set,
            })
            .collect()
    }

    #[test]
    fn deepest_covering_entry_wins() {
        let s = snap(&[(0, 3, 0, 100, 1, 0), (0, 1, 40, 60, 2, 0)]);
        let hit = spec_probe(&s, 0, 50, 0).unwrap();
        assert_eq!((hit.node, hit.level), (2, 1));
        let hit = spec_probe(&s, 0, 10, 0).unwrap();
        assert_eq!((hit.node, hit.level), (1, 3));
        assert!(spec_probe(&s, 0, 101, 0).is_none());
        assert!(spec_probe(&s, 1, 50, 0).is_none(), "index isolation");
    }

    #[test]
    fn equal_level_first_in_scan_order_wins() {
        let s = snap(&[(0, 2, 0, 50, 7, 0), (0, 2, 20, 90, 8, 0)]);
        assert_eq!(spec_probe(&s, 0, 30, 0).unwrap().node, 7);
    }

    #[test]
    fn gap_keys_in_coalesced_entries_miss() {
        let e = EntrySnapshot {
            index: 0,
            level: 0,
            span: KeyRange::new(0, 6),
            segs: vec![(KeyRange::new(0, 2), 1), (KeyRange::new(4, 6), 2)],
            payload_bytes: 48,
            pinned: false,
            set: 0,
        };
        assert_eq!(
            spec_probe(std::slice::from_ref(&e), 0, 1, 0).unwrap().node,
            1
        );
        assert_eq!(
            spec_probe(std::slice::from_ref(&e), 0, 5, 0).unwrap().node,
            2
        );
        assert!(spec_probe(&[e], 0, 3, 0).is_none(), "gap key");
    }

    #[test]
    fn history_probe_collects_tied_nodes() {
        let mut h = HistoryOracle::new();
        h.insert(0, 2, KeyRange::new(0, 50), 7);
        h.insert(0, 2, KeyRange::new(20, 90), 8);
        h.insert(0, 4, KeyRange::new(0, 1000), 9);
        let hit = h.probe(0, 30).unwrap();
        assert_eq!(hit.level, 2);
        assert_eq!(hit.nodes, vec![7, 8]);
        assert_eq!(h.probe(0, 500).unwrap().nodes, vec![9]);
        h.flush();
        assert!(h.probe(0, 30).is_none());
    }

    #[test]
    fn justification_accepts_sub_ranges_only() {
        let mut h = HistoryOracle::new();
        h.insert(0, 1, KeyRange::new(0, 100), 5);
        assert!(h.justifies(0, 1, &KeyRange::new(10, 20), 5));
        assert!(h.justifies(0, 1, &KeyRange::new(0, 100), 5));
        assert!(!h.justifies(0, 1, &KeyRange::new(90, 110), 5));
        assert!(!h.justifies(0, 0, &KeyRange::new(10, 20), 5), "level");
        assert!(!h.justifies(0, 1, &KeyRange::new(10, 20), 6), "node");
    }

    #[test]
    fn invalidation_taints_overlapping_records_only() {
        let mut h = HistoryOracle::new();
        h.insert(0, 0, KeyRange::new(0, 100), 1);
        h.insert(0, 2, KeyRange::new(0, 100), 2);
        h.insert(1, 0, KeyRange::new(0, 100), 3);
        h.invalidate(0, Some(0), KeyRange::new(50, 60));
        // Level-0 record of index 0 is tainted; the level-2 record and
        // the other index keep their mandatory outcomes.
        assert!(h.probe_live(0, 55).is_some_and(|x| x.level == 2));
        assert!(h.probe_live(1, 55).is_some_and(|x| x.level == 0));
        // Untainted view still sees the deepest insert.
        assert!(h.probe(0, 55).is_some_and(|x| x.level == 0));
        // Disjoint invalidation taints nothing.
        h.invalidate(0, None, KeyRange::new(200, 300));
        assert!(h.probe_live(0, 10).is_some_and(|x| x.level == 2));
    }

    #[test]
    fn justified_live_rejects_tags_overlapping_kills() {
        let mut h = HistoryOracle::new();
        h.insert(0, 0, KeyRange::new(0, 100), 5);
        h.invalidate(0, Some(0), KeyRange::new(50, 60));
        // A split segment outside the killed range may legally survive.
        assert!(h.justified_live(0, 0, &KeyRange::new(0, 31), 5));
        // Any tag overlapping the revoked span is a stale hit.
        assert!(!h.justified_live(0, 0, &KeyRange::new(40, 55), 5));
        assert!(!h.justified_live(0, 0, &KeyRange::new(0, 100), 5));
        // Re-admission starts a fresh live record.
        h.insert(0, 0, KeyRange::new(0, 100), 5);
        assert!(h.justified_live(0, 0, &KeyRange::new(40, 55), 5));
        assert!(h.probe_live(0, 55).is_some_and(|x| x.level == 0));
    }

    #[test]
    fn all_level_invalidation_taints_every_level() {
        let mut h = HistoryOracle::new();
        h.insert(0, 0, KeyRange::new(0, 10), 1);
        h.insert(0, 3, KeyRange::new(0, 10), 2);
        h.invalidate(0, None, KeyRange::new(5, 5));
        assert!(h.probe_live(0, 5).is_none());
        assert!(h.probe(0, 5).is_some());
    }
}
