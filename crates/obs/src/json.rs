//! Minimal JSON value model, writer and parser.
//!
//! The container bakes in no serialization crates, so the telemetry
//! back-ends hand-roll the little JSON they need: a tree of [`Json`]
//! values that writes itself compactly and a recursive-descent parser
//! for reading traces and manifests back (trace inspection, CI
//! validation). Unsigned integers get their own variant so `u64`
//! counters round-trip exactly instead of passing through `f64`.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (counters, cycles, ids).
    UInt(u64),
    /// Any other number (fractions, negatives).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved on write; lookups scan.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly to a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.s.get(self.i) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.s[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte-wise: the input
                    // is a &str, so byte runs between quotes are valid.
                    let start = self.i;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ASCII digits");
        if !fractional && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        // `"1e999".parse::<f64>()` yields `inf`; JSON has no non-finite
        // numbers, so overflowing literals are rejected rather than
        // silently saturated (NaN/Infinity tokens never reach here — the
        // value dispatch has no arm for them).
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Num(f)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_objects() {
        let v = Json::Obj(vec![
            ("a".into(), Json::UInt(1)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::str("x\"y")),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[true,null],"c":"x\"y"}"#);
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Json::Obj(vec![
            ("count".into(), Json::UInt(u64::MAX)),
            ("frac".into(), Json::Num(0.25)),
            ("s".into(), Json::str("line\nbreak\tand \\ quote \"")),
            ("list".into(), Json::Arr(vec![Json::UInt(0), Json::UInt(7)])),
        ]);
        let round = Json::parse(&v.render()).expect("round-trip");
        assert_eq!(round, v);
        // u64::MAX survives exactly (would be lossy through f64).
        assert_eq!(round.get("count").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#" {"a": [1, {"b": -2.5e1}], "c": "Aé"} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        let b = v.get("a").unwrap().as_arr().unwrap()[1].get("b").unwrap();
        assert_eq!(b.as_f64(), Some(-25.0));
        assert_eq!(v.get("c").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn rejects_non_finite_numbers() {
        // JSON has no NaN/Infinity tokens...
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        assert!(Json::parse(r#"{"x": NaN}"#).is_err());
        // ...and numeric literals that overflow f64 to infinity must not
        // sneak a non-finite value in through the back door.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        // Large-but-finite still parses.
        assert_eq!(Json::parse("1e300").unwrap().as_f64(), Some(1e300));
    }

    #[test]
    fn non_finite_values_render_as_null() {
        // A non-finite f64 constructed in-process (e.g. a 0/0 ratio in a
        // report) degrades to null rather than emitting invalid JSON.
        let v = Json::Arr(vec![
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
            Json::Num(f64::NEG_INFINITY),
        ]);
        assert_eq!(v.render(), "[null,null,null]");
        assert_eq!(
            Json::parse(&v.render()).unwrap(),
            Json::Arr(vec![Json::Null, Json::Null, Json::Null])
        );
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse(r#"{"n": 3, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
