//! Measured vs modeled: the native-execution cross-validation figure.
//!
//! Runs the three B+tree workloads that exercise the full semantic
//! surface — `where` (read-mostly analytics), `uniform_std_v1` at 30%
//! writes (CRUD: splits, merges, invalidations) and `drift_hotspot_v1`
//! (drifting hotspot + scan storms) — under every native-capable design
//! (`stream`, `metal-ix`, `metal`) through **both** backends, and prints
//! one CSV row per (workload, design, backend) with the semantic outcome
//! counters. The sim and native rows of a pair must be identical; that
//! is the cross-validation gate (`--check` re-verifies it from the CSV,
//! and `ci.sh` runs a forged-counter negative control against it).
//!
//! Measured execution numbers (walks/sec, page faults, hot-map hit
//! split) go to stderr `#`-comments so the CSV stays pinnable; the same
//! numbers reach `BENCH.json` via `bench_suite` and the HTML report.
//!
//! Extra flags (on top of the shared harness flags):
//!
//! - `--check PATH`  — verify a previously written CSV: every (workload,
//!   design) pair must have byte-identical sim and native outcome cells.
//!   Exits 1 on divergence, 2 on unreadable/malformed input.
//! - `--store DIR`   — persist each workload's materialized trees as
//!   reopenable block files under DIR (out-of-core handoff).
//! - `--load DIR`    — reopen the trees stored by `--store` and
//!   cross-check walks against freshly built in-memory trees. A
//!   corrupted page surfaces as a contextful error and exit 2.
//!
//! The shared `--backend` flag is ignored here: this binary's whole job
//! is running both backends side by side.

use metal_bench::{csv_row, exit, f3, fail, HarnessArgs, Session};
use metal_core::models::DesignSpec;
use metal_core::native::{supports_native, BlockFile, PagedTree};
use metal_core::runner::{run_design, Backend, RunReport};
use metal_index::walk::{Descend, WalkIndex};
use metal_workloads::crud::uniform_std_v1;
use metal_workloads::drift::drift_hotspot_v1;
use metal_workloads::{BuiltWorkload, Scale, Workload};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The CSV columns after `workload,design,backend`: the semantic
/// outcomes both backends must agree on exactly.
const OUTCOME_COLS: [&str; 11] = [
    "walks",
    "found",
    "write",
    "splits",
    "merges",
    "probes",
    "misses",
    "inserts",
    "bypasses",
    "invalidated",
    "hit_levels",
];

fn outcome_cells(r: &RunReport) -> Vec<String> {
    let hit_levels = if r.stats.hit_levels.is_empty() {
        "-".to_string()
    } else {
        r.stats
            .hit_levels
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(":")
    };
    vec![
        r.stats.walks.to_string(),
        r.stats.found_walks.to_string(),
        r.stats.write_walks.to_string(),
        r.stats.node_splits.to_string(),
        r.stats.node_merges.to_string(),
        r.stats.probes.to_string(),
        r.stats.misses.to_string(),
        r.stats.inserts.to_string(),
        r.stats.bypasses.to_string(),
        r.stats.entries_invalidated.to_string(),
        hit_levels,
    ]
}

/// The native-capable subset of the standard figure designs, with the
/// workload's Table 2 descriptors on the tuned METAL entry.
fn native_designs(built: &BuiltWorkload, cache_bytes: usize) -> Vec<(String, DesignSpec)> {
    metal_bench::figure_designs(built, cache_bytes)
        .into_iter()
        .filter(|(_, spec)| supports_native(spec))
        .collect()
}

/// The workload roster: name → builder (pure functions of the scale).
fn workloads(scale: Scale) -> Vec<BuiltWorkload> {
    vec![
        Workload::Where.build(scale),
        uniform_std_v1(scale, 30),
        drift_hotspot_v1(scale),
    ]
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut check: Option<PathBuf> = None;
    let mut store: Option<PathBuf> = None;
    let mut load: Option<PathBuf> = None;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = Some(arg_path(it.next(), "--check")),
            "--store" => store = Some(arg_path(it.next(), "--store")),
            "--load" => load = Some(arg_path(it.next(), "--load")),
            _ => {}
        }
    }
    if let Some(path) = check {
        check_csv(&path);
        return;
    }

    let args = HarnessArgs::parse();
    if let Some(dir) = &store {
        store_trees(dir, args.scale);
    }
    if let Some(dir) = &load {
        load_and_rewalk(dir, args.scale);
    }
    if store.is_some() || load.is_some() {
        return;
    }

    let mut session = Session::new("fig_native", &args);
    println!("# native execution vs simulation: semantic outcomes must match per row pair");
    println!("# measured throughput/page-fault numbers are on stderr (CSV stays pinnable)");
    let mut header = vec!["workload", "design", "backend"];
    header.extend(OUTCOME_COLS);
    csv_row(header);

    for built in workloads(args.scale) {
        let exp = built.experiment();
        for (name, spec) in native_designs(&built, args.cache_bytes) {
            for backend in [Backend::Sim, Backend::Native] {
                let scope = format!("{}/{name}", built.name);
                let tag = match backend {
                    Backend::Sim => "sim",
                    Backend::Native => "native",
                };
                // Entry ids are only unique within one (run, design,
                // shard) trace stream, so the two backends must not
                // share a run label — tag the traced scope while the
                // manifest keeps the plain one for sim/native pairing.
                let cfg = session
                    .config(&format!("{scope}:{tag}"))
                    .with_lanes(built.tiles)
                    .with_backend(backend);
                let report = run_design(&spec, &exp, &cfg);
                session.record_report(&scope, &format!("{name}:{tag}"), &report);
                let mut cells = vec![built.name.to_string(), name.clone(), tag.to_string()];
                cells.extend(outcome_cells(&report));
                csv_row(cells);
                if let Some(m) = &report.native {
                    eprintln!(
                        "# measured {}/{}: {} walks/s, {} page reads, {} page writes, \
                         {} hot-map hits vs {} cold node reads, {} pages ({} free)",
                        built.name,
                        name,
                        f3(m.walks_per_sec()),
                        m.page_reads,
                        m.page_writes,
                        m.hot_hits,
                        m.cold_reads,
                        m.pages,
                        m.free_pages
                    );
                }
            }
        }
    }
    session.finish();
}

fn arg_path(v: Option<&String>, flag: &str) -> PathBuf {
    match v {
        Some(p) => PathBuf::from(p),
        None => fail(format_args!("{flag} needs a path argument")),
    }
}

/// `--check`: re-verify backend equivalence from a written CSV.
fn check_csv(path: &Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("--check {}: {e}", path.display())));
    // (workload, design) → backend → outcome cells.
    let mut pairs: BTreeMap<(String, String), BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.starts_with("workload,") || line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 3 + OUTCOME_COLS.len() {
            fail(format_args!(
                "--check {}: malformed row (want {} cells, got {}): {line}",
                path.display(),
                3 + OUTCOME_COLS.len(),
                cells.len()
            ));
        }
        pairs
            .entry((cells[0].to_string(), cells[1].to_string()))
            .or_default()
            .insert(
                cells[2].to_string(),
                cells[3..].iter().map(|s| s.to_string()).collect(),
            );
    }
    if pairs.is_empty() {
        fail(format_args!("--check {}: no data rows", path.display()));
    }
    let mut divergent = 0;
    for ((workload, design), by_backend) in &pairs {
        let (Some(sim), Some(native)) = (by_backend.get("sim"), by_backend.get("native")) else {
            fail(format_args!(
                "--check {}: {workload}/{design} lacks a sim/native row pair",
                path.display()
            ));
        };
        for (col, (s, n)) in OUTCOME_COLS.iter().zip(sim.iter().zip(native)) {
            if s != n {
                eprintln!("BACKEND DIVERGENCE {workload}/{design}: {col} sim={s} native={n}");
                divergent += 1;
            }
        }
    }
    if divergent > 0 {
        eprintln!("error: {divergent} outcome cell(s) differ between backends");
        std::process::exit(exit::VALIDATION);
    }
    println!(
        "# backend equivalence verified: {} (workload, design) pairs, every outcome identical",
        pairs.len()
    );
}

/// For each workload, each B+tree index materialized and persisted as a
/// reopenable block file `DIR/<workload>-<index>.blk`.
fn store_trees(dir: &Path, scale: Scale) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(format_args!("--store {}: {e}", dir.display())));
    for built in workloads(scale) {
        for (i, index) in built.indexes.iter().enumerate() {
            let Some(tree) = index.as_bptree() else {
                continue;
            };
            let path = dir.join(format!("{}-{i}.blk", built.name));
            let file = BlockFile::create(&path)
                .unwrap_or_else(|e| fail(format_args!("--store {}: {e}", path.display())));
            let mut paged = PagedTree::materialize(tree, file)
                .unwrap_or_else(|e| fail(format_args!("--store {}: {e}", path.display())));
            paged
                .persist()
                .unwrap_or_else(|e| fail(format_args!("--store {}: {e}", path.display())));
            eprintln!(
                "# stored {}: {} nodes, {} pages",
                path.display(),
                paged.node_count(),
                paged.page_count()
            );
        }
    }
}

/// Reopens every stored tree and cross-checks a key sweep against a
/// freshly built in-memory copy of the same workload. Corruption (or a
/// wrong file) dies with a contextful error and exit 2 via `fail`.
fn load_and_rewalk(dir: &Path, scale: Scale) {
    for built in workloads(scale) {
        for (i, index) in built.indexes.iter().enumerate() {
            let Some(tree) = index.as_bptree() else {
                continue;
            };
            let path = dir.join(format!("{}-{i}.blk", built.name));
            let file = BlockFile::open(&path)
                .unwrap_or_else(|e| fail(format_args!("--load {}: {e}", path.display())));
            let mut paged = PagedTree::reopen(file)
                .unwrap_or_else(|e| fail(format_args!("--load {}: {e}", path.display())));
            if paged.len() != tree.len() {
                fail(format_args!(
                    "--load {}: stored tree indexes {} keys, workload build has {}",
                    path.display(),
                    paged.len(),
                    tree.len()
                ));
            }
            // Full scrub first: read every live node so a corrupted page
            // anywhere in the file surfaces deterministically, not only
            // when a walk happens to cross it.
            for id in 0..paged.node_count() as u32 {
                paged.read_node(id).unwrap_or_else(|e| {
                    fail(format_args!("--load {}: scrub: {e}", path.display()))
                });
            }
            // Walk the request keys through the reopened pages; found-ness
            // must match the in-memory walk key by key.
            let mut checked = 0u64;
            for req in built.requests.iter().take(2048) {
                if usize::from(req.index) != i {
                    continue;
                }
                let expect = tree.contains(req.key);
                let (_, leaf) = paged.path_from(paged.root(), req.key).unwrap_or_else(|e| {
                    fail(format_args!(
                        "--load {}: walk {}: {e}",
                        path.display(),
                        req.key
                    ))
                });
                let got = matches!(leaf, Descend::Leaf { found: true, .. });
                if got != expect {
                    fail(format_args!(
                        "--load {}: key {} found={got} on reopened pages, \
                         found={expect} in memory",
                        path.display(),
                        req.key
                    ));
                }
                checked += 1;
            }
            eprintln!(
                "# reopened {}: {} keys re-walked against the in-memory build",
                path.display(),
                checked
            );
        }
    }
    println!("# --load: all stored trees reopened and re-walked successfully");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_columns_and_cells_stay_in_sync() {
        let scale = Scale::ci().with_keys(512).with_walks(64);
        let built = uniform_std_v1(scale, 30);
        let exp = built.experiment();
        let (_, spec) = native_designs(&built, 64 * 1024).remove(0);
        let r = run_design(&spec, &exp, &Default::default());
        assert_eq!(outcome_cells(&r).len(), OUTCOME_COLS.len());
    }
}
