//! Plain-timing micro-benchmarks for the IX-cache hot paths: probe (range
//! match + level priority) and insert (packing + CLOCK eviction).
//!
//! These run with `harness = false` as ordinary `main()` binaries so the
//! workspace builds offline without a benchmark framework dependency.

use metal_core::ixcache::{IxCache, IxConfig};
use metal_core::range::KeyRange;
use std::hint::black_box;
use std::time::Instant;

fn filled_cache() -> IxCache {
    let mut c = IxCache::new(IxConfig::kb64());
    // A mix of narrow leaves and wide interior entries.
    for i in 0..512u64 {
        c.insert(0, i as u32, KeyRange::new(i * 8, i * 8 + 7), 0, 64, 0);
    }
    for i in 0..128u64 {
        c.insert(
            0,
            10_000 + i as u32,
            KeyRange::new(i * 512, i * 512 + 511),
            3,
            64,
            0,
        );
    }
    c
}

fn report(name: &str, iters: u64, elapsed_ns: u128) {
    println!(
        "{name}: {:.1} ns/iter ({iters} iters)",
        elapsed_ns as f64 / iters as f64
    );
}

fn main() {
    const ITERS: u64 = 200_000;

    let mut cache = filled_cache();
    let mut key = 0u64;
    let t = Instant::now();
    for _ in 0..ITERS {
        key = (key + 37) % 4096;
        black_box(cache.probe(0, black_box(key)));
    }
    report("ixcache_probe_hit", ITERS, t.elapsed().as_nanos());

    let t = Instant::now();
    for _ in 0..ITERS {
        black_box(cache.probe(0, black_box(1 << 40)));
    }
    report("ixcache_probe_miss", ITERS, t.elapsed().as_nanos());

    let mut cache = filled_cache();
    let mut i = 0u64;
    let t = Instant::now();
    for _ in 0..ITERS {
        i += 1;
        cache.insert(
            0,
            (20_000 + i) as u32,
            KeyRange::new(i * 16, i * 16 + 15),
            1,
            64,
            0,
        );
    }
    report("ixcache_insert_evict", ITERS, t.elapsed().as_nanos());
}
