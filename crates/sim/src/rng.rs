//! A small, dependency-free, splittable deterministic PRNG.
//!
//! The workload generators and the test suite need reproducible random
//! streams, and the sharded runner additionally needs *splittable* streams:
//! shard `N` must see the same keys no matter how many worker threads run
//! the experiment. [`SplitRng`] is a SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA'14) — each stream is identified by a `(seed, stream)`
//! pair, and deriving a child stream is a pure function of that pair, so
//! generation order across streams never matters.
//!
//! The registry is offline in this environment, so this replaces the
//! `rand` crate; the API mirrors the `SmallRng` call sites it replaced
//! (`seed_from_u64`, `gen_range`, `gen_f64`).

use std::ops::{Range, RangeInclusive};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Splittable SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitRng {
    state: u64,
}

impl SplitRng {
    /// Creates the root stream for `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitRng { state: seed }
    }

    /// Derives an independent child stream. The child depends only on
    /// `(seed, stream)`, never on how much the parent has generated, so
    /// per-shard streams are stable under any shard/thread count.
    pub fn stream(seed: u64, stream: u64) -> Self {
        SplitRng {
            state: mix64(seed ^ stream.wrapping_mul(GOLDEN_GAMMA)),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `range` (half-open or inclusive, `u64`/`usize`).
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, span)` via widening multiply. The bias for
    /// spans far below 2^64 is < span/2^64 — irrelevant for workload
    /// shaping, and the method is branch-free and deterministic.
    #[inline]
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0, "empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Range types [`SplitRng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform element.
    fn sample(self, rng: &mut SplitRng) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded(span + 1)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitRng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitRng) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let draw = || {
            let mut r = SplitRng::seed_from_u64(7);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitRng::seed_from_u64(1);
        let mut b = SplitRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn child_streams_are_independent_of_parent_position() {
        // stream() is a pure function of (seed, id): consuming the parent
        // must not change a child — the property sharding relies on.
        let c1 = SplitRng::stream(42, 3);
        let mut parent = SplitRng::seed_from_u64(42);
        for _ in 0..1000 {
            parent.next_u64();
        }
        let c2 = SplitRng::stream(42, 3);
        assert_eq!(c1, c2);
    }

    #[test]
    fn distinct_streams_decorrelate() {
        let mut a = SplitRng::stream(9, 0);
        let mut b = SplitRng::stream(9, 1);
        let va: Vec<u64> = (0..256).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..256).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        let shared = va.iter().filter(|x| vb.contains(x)).count();
        assert_eq!(shared, 0, "streams should not collide");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SplitRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(2usize..=16);
            assert!((2..=16).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut r = SplitRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn in 1000 tries");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SplitRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SplitRng::seed_from_u64(0);
        let _ = r.gen_range(5u64..5);
    }
}
