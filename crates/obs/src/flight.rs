//! Flight recorder: a fixed-size ring of the most recent raw events per
//! design, for post-mortem inspection.
//!
//! Full JSONL traces of bench-scale runs are gigabytes; the flight
//! recorder keeps only the last [`FlightRecorder::capacity`] events of
//! each design (shards of one design share a ring, so the dump shows
//! the interleaving that actually happened) and can dump them on
//! panic, on a watchdog anomaly, or on demand — the bench harness wires
//! all three behind `--flight-out`.
//!
//! The dump is ordinary trace JSONL (same field spelling as
//! [`crate::jsonl`]), prefixed per design with one meta line recording
//! how many earlier events the ring dropped, so `trace_dump` and
//! `analyze` can read a flight dump like any truncated trace.

use crate::json::Json;
use crate::jsonl::event_fields;
use metal_sim::obs::{Event, EventSink};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Default ring capacity per design (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// One recorded event with its stream labels.
#[derive(Debug, Clone, Copy)]
struct FlightRec {
    shard: u64,
    at: u64,
    ev: Event,
}

/// One design's ring.
#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<FlightRec>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, cap: usize, rec: FlightRec) {
        if self.buf.len() == cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

/// Process-wide flight recorder; hand out one [`FlightSink`] per
/// (design, shard) via [`FlightRecorder::sink`].
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Mutex<BTreeMap<String, Arc<Mutex<Ring>>>>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` events per design.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            capacity: capacity.max(1),
            rings: Mutex::new(BTreeMap::new()),
        })
    }

    /// Ring capacity per design.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// An event sink recording into `design`'s ring.
    pub fn sink(self: &Arc<Self>, design: &str, shard: u64) -> FlightSink {
        let ring = Arc::clone(
            self.rings
                .lock()
                .expect("flight rings poisoned")
                .entry(design.to_string())
                .or_default(),
        );
        FlightSink {
            shard,
            ring,
            capacity: self.capacity,
        }
    }

    /// Renders every ring as JSONL: per design one meta line
    /// (`{"design":…,"flight_dropped":N,"flight_len":N}`) followed by
    /// its recorded events, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let rings = self.rings.lock().expect("flight rings poisoned");
        let mut out = String::new();
        for (design, ring) in rings.iter() {
            let ring = ring.lock().expect("flight ring poisoned");
            Json::Obj(vec![
                ("design".into(), Json::str(design.as_str())),
                ("flight_dropped".into(), Json::UInt(ring.dropped)),
                ("flight_len".into(), Json::UInt(ring.buf.len() as u64)),
            ])
            .write(&mut out);
            out.push('\n');
            for rec in ring.buf.iter() {
                let mut fields = vec![
                    ("design", Json::str(design.as_str())),
                    ("shard", Json::UInt(rec.shard)),
                    ("at", Json::UInt(rec.at)),
                    ("ev", Json::str(rec.ev.kind())),
                ];
                fields.extend(event_fields(&rec.ev));
                Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                )
                .write(&mut out);
                out.push('\n');
            }
        }
        out
    }

    /// Writes the dump to `path` (truncating).
    pub fn dump_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.dump_jsonl().as_bytes())?;
        f.flush()
    }
}

/// Per-(design, shard) sink feeding the shared ring. Recording takes
/// the design's ring lock per event, so the recorder is for opted-in
/// post-mortem runs, not the zero-cost default path.
pub struct FlightSink {
    shard: u64,
    ring: Arc<Mutex<Ring>>,
    capacity: usize,
}

impl EventSink for FlightSink {
    fn emit(&mut self, at: u64, ev: &Event) {
        self.ring.lock().expect("flight ring poisoned").push(
            self.capacity,
            FlightRec {
                shard: self.shard,
                at,
                ev: *ev,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let rec = FlightRecorder::new(3);
        let mut sink = rec.sink("metal", 0);
        for walk in 0..10 {
            sink.emit(walk, &Event::WalkStart { walk, lane: 0 });
        }
        let dump = rec.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "meta line + 3 ring entries");
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("flight_dropped").unwrap().as_u64(), Some(7));
        assert_eq!(meta.get("flight_len").unwrap().as_u64(), Some(3));
        let walks: Vec<u64> = lines[1..]
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("walk")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(walks, vec![7, 8, 9], "oldest dropped, order kept");
    }

    #[test]
    fn shards_share_a_design_ring_and_lines_parse_as_trace() {
        let rec = FlightRecorder::new(8);
        let mut s0 = rec.sink("metal", 0);
        let mut s1 = rec.sink("metal", 1);
        s0.emit(5, &Event::WalkStart { walk: 1, lane: 0 });
        s1.emit(
            6,
            &Event::WalkEnd {
                walk: 1,
                lane: 0,
                latency: 42,
            },
        );
        let dump = rec.dump_jsonl();
        let lines: Vec<Json> = dump.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(lines[2].get("shard").unwrap().as_u64(), Some(1));
        assert_eq!(lines[2].get("ev").unwrap().as_str(), Some("walk_end"));
        assert_eq!(lines[2].get("latency").unwrap().as_u64(), Some(42));
    }
}
