//! Property tests for the walk interface across all index families:
//! termination, coverage and access consistency.

use metal_index::bptree::BPlusTree;
use metal_index::fiber::FiberMatrix;
use metal_index::graph::AdjacencyIndex;
use metal_index::hashtable::ChainedHashTable;
use metal_index::sortedset::{SortedSet, SortedSetConfig};
use metal_index::tensor::SparseTensor;
use metal_index::walk::{Descend, WalkIndex};
use metal_sim::types::{Addr, Key};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn sorted_keys(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    proptest::collection::btree_set(1u64..500_000, 1..max_len)
        .prop_map(|s| s.into_iter().collect())
}

/// Walks `key` against `index`, asserting termination within a generous
/// step bound and returning the outcome.
fn checked_walk(index: &dyn WalkIndex, key: Key) -> bool {
    let mut id = index.root();
    let bound = 8 * index.depth() as usize + 64;
    for _ in 0..bound {
        // Every visited node's fetch must be well-formed.
        let (_, bytes) = index.access_for(id, key);
        assert!(bytes >= 1, "fetches are at least one byte");
        match index.descend(id, key) {
            Descend::Child(c) => id = c,
            Descend::Leaf { found, .. } => return found,
        }
    }
    panic!("walk for key {key} did not terminate within {bound} steps");
}

proptest! {
    /// Hash-table membership agrees with the oracle for arbitrary probe
    /// keys (present and absent), at any geometry.
    #[test]
    fn hashtable_matches_oracle(
        keys in sorted_keys(200),
        bucket_pow in 1u32..8,
        per_node in 1usize..8,
        probes in proptest::collection::vec(1u64..600_000, 1..40),
    ) {
        let oracle: BTreeSet<Key> = keys.iter().copied().collect();
        let space = (keys.last().unwrap() + 1).next_power_of_two();
        let t = ChainedHashTable::build(&keys, 1 << bucket_pow, per_node, space, Addr::new(0));
        for p in probes {
            prop_assert_eq!(checked_walk(&t, p), oracle.contains(&p));
        }
    }

    /// Sorted-set membership agrees with the oracle at deep and shallow
    /// geometries.
    #[test]
    fn sortedset_matches_oracle(
        keys in sorted_keys(200),
        shallow in any::<bool>(),
        probes in proptest::collection::vec(1u64..600_000, 1..40),
    ) {
        let oracle: BTreeSet<Key> = keys.iter().copied().collect();
        let space = (keys.last().unwrap() + 1).next_power_of_two();
        let cfg = if shallow {
            SortedSetConfig {
                n_buckets: 256,
                branching: 4,
                score_space: space,
            }
        } else {
            SortedSetConfig::deep(space)
        };
        let s = SortedSet::build(&keys, cfg, Addr::new(0));
        for p in probes {
            prop_assert_eq!(checked_walk(&s, p), oracle.contains(&p));
        }
    }

    /// Tensor and fiber representations of the same matrix agree with
    /// each other and the oracle.
    #[test]
    fn tensor_and_fiber_agree(
        cols in proptest::collection::btree_set(0u64..10_000, 1..120),
        probes in proptest::collection::vec(0u64..12_000, 1..40),
    ) {
        let columns: Vec<(Key, u32)> =
            cols.iter().map(|&c| (c, (c % 7 + 1) as u32)).collect();
        let deep = SparseTensor::build(100, 10_000, &columns, 4, Addr::new(0));
        let shallow = FiberMatrix::build(100, 10_000, &columns, 16, Addr::new(0));
        for p in probes {
            let in_deep = checked_walk(&deep, p);
            let in_shallow = checked_walk(&shallow, p);
            prop_assert_eq!(in_deep, in_shallow);
            prop_assert_eq!(in_deep, cols.contains(&p));
        }
    }

    /// Adjacency walks resolve edge lists whose sizes match the degrees.
    #[test]
    fn adjacency_payload_sizes(
        vertices in proptest::collection::btree_set(0u64..5_000, 1..100),
    ) {
        let vs: Vec<(Key, u32)> =
            vertices.iter().map(|&v| (v, (v % 9 + 1) as u32)).collect();
        let g = AdjacencyIndex::build(&vs, 4, Addr::new(0));
        for &(v, d) in &vs {
            let mut id = g.root();
            let found = loop {
                match g.descend(id, v) {
                    Descend::Child(c) => id = c,
                    Descend::Leaf { found, value_bytes, .. } => {
                        if found {
                            prop_assert_eq!(value_bytes, d as u64 * 12);
                        }
                        break found;
                    }
                }
            };
            prop_assert!(found);
        }
    }

    /// Leaf-chain traversal of a B+tree enumerates exactly the key set.
    #[test]
    fn bptree_leaf_chain_complete(keys in sorted_keys(300), leaf_keys in 1usize..10) {
        let t = BPlusTree::bulk_load_geometry(&keys, leaf_keys, 4, Addr::new(0), 16);
        let mut leaf = Some(t.leaf_for(keys[0]));
        let mut seen = Vec::new();
        while let Some(l) = leaf {
            seen.extend_from_slice(t.leaf_keys(l));
            leaf = t.next_leaf(l);
        }
        prop_assert_eq!(seen, keys);
    }

    /// `access_for` on directory-style roots returns a single-block slot
    /// fetch, never the whole directory.
    #[test]
    fn directory_access_is_slot_sized(keys in sorted_keys(150)) {
        let space = (keys.last().unwrap() + 1).next_power_of_two();
        let t = ChainedHashTable::build(&keys, 1024, 8, space, Addr::new(0));
        for &k in keys.iter().take(10) {
            let (_, bytes) = t.access_for(t.root(), k);
            prop_assert!(bytes <= 64, "directory fetch is one block, got {bytes}");
        }
    }
}
