//! Ablation — IX-cache geometry sweep (Table 3 supplemental).
//!
//! Sweeps associativity and key-block bits for the IX-cache's narrow
//! partition. Paper supplemental: "Best geometry: 16-way. 16 banked."
//! Larger key blocks exacerbate set conflicts (Fig. 8's discussion).
//!
//! Run: `cargo run --release -p metal-bench --bin abl_geometry`

use metal_bench::{csv_row, f3, run_one, HarnessArgs, Session};
use metal_core::models::DesignSpec;
use metal_core::IxConfig;
use metal_workloads::Workload;

fn main() {
    let args = HarnessArgs::parse();
    let mut session = Session::new("abl_geometry", &args);
    println!("# Ablation: IX-cache geometry (ways x key-block bits), Where workload");
    println!("# paper supplemental: 16-way is the sweet spot; oversized key");
    println!("#   blocks increase set conflicts");
    csv_row(["ways", "key_block_bits", "miss_rate", "avg_walk_latency"]);
    let built = Workload::Where.build(args.scale);
    for ways in [1usize, 4, 16, 64] {
        for bits in [2u32, 4, 8, 12] {
            let ix = IxConfig {
                entries: (args.cache_bytes / 64).max(16),
                ways,
                key_block_bits: bits,
                wide_fraction: 0.5,
            };
            let scope = format!("where/w{ways}-b{bits}");
            let report = run_one(
                Workload::Where,
                args.scale,
                &DesignSpec::Metal {
                    ix,
                    descriptors: built.descriptors.clone(),
                    tune: false,
                    batch_walks: built.batch_walks,
                },
                None,
                session.config(&scope),
            );
            session.record(&scope, &report.design, &report.stats);
            csv_row([
                ways.to_string(),
                bits.to_string(),
                f3(report.stats.miss_rate()),
                f3(report.stats.avg_walk_latency()),
            ]);
        }
    }
    session.finish();
}
