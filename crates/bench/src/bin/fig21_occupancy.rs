//! Fig. 21 — IX-cache occupancy by index level, METAL-IX vs METAL.
//!
//! What the cache actually holds at the end of a run. Paper expectation:
//! METAL-IX spreads capacity across many levels; METAL concentrates it on
//! the pattern's target levels (mid-band for scans, leaves for SpMM;
//! SpMM-S occupies only levels 1–3 because fibers are 3 levels deep).
//!
//! Run: `cargo run --release -p metal-bench --bin fig21_occupancy`

use metal_bench::{csv_row, run_workload, HarnessArgs, Session};
use metal_workloads::Workload;

fn main() {
    let args = HarnessArgs::parse();
    let mut session = Session::new("fig21_occupancy", &args);
    println!("# Fig 21: final IX-cache occupancy per index level (entry counts)");
    println!("# paper expectation: metal concentrates on target levels, metal-ix spreads");
    csv_row(["workload", "design", "level", "entries"]);
    for w in Workload::all() {
        let reports = run_workload(w, args.scale, args.cache_bytes, session.config(w.name()));
        for (name, r) in &reports {
            session.record(w.name(), name, &r.stats);
        }
        for (name, report) in &reports {
            if report.occupancy_by_level.is_empty() {
                continue;
            }
            for (level, &count) in report.occupancy_by_level.iter().enumerate() {
                if count > 0 {
                    csv_row([
                        w.name().to_string(),
                        name.clone(),
                        level.to_string(),
                        count.to_string(),
                    ]);
                }
            }
        }
    }
    session.finish();
}
