//! Design-model accounting checks: the event trace must reconstruct the
//! statistics, and observation must never perturb them.
//!
//! Each case builds a small B+tree experiment, runs one [`DesignSpec`]
//! bare and once more with a [`MetricsRegistry`] sink attached, then
//! cross-checks the two: identical statistics (telemetry is
//! observe-only), one `walk_end` event per walk, traced per-level hit
//! counts equal to `RunStats::hit_levels` for the IX designs, and zero
//! `ix_probe` events from designs that have no IX-cache. Cross-design
//! invariants (`found_walks` must not depend on the cache organization)
//! ride along on the same experiment.

use crate::check::Divergence;
use metal_core::models::{DesignSpec, Experiment};
use metal_core::request::{OpKind, WalkRequest};
use metal_core::runner::{run_design, ObsConfig, RunConfig, ShardCtx};
use metal_core::IxConfig;
use metal_index::BPlusTree;
use metal_obs::MetricsRegistry;
use metal_sim::obs::shared;
use metal_sim::rng::SplitRng;
use metal_sim::types::Addr;
use std::sync::Arc;

fn fail(op: usize, what: impl Into<String>) -> Result<(), Divergence> {
    Err(Divergence {
        op,
        what: what.into(),
    })
}

/// A config whose shards all report into `registry`.
fn observed(base: RunConfig, registry: &Arc<MetricsRegistry>) -> RunConfig {
    let registry = registry.clone();
    base.with_obs(ObsConfig {
        sink_factory: Some(Arc::new(move |_ctx: &ShardCtx| {
            Some(shared(registry.sink()))
        })),
        progress: None,
        stall_cycles: None,
        total_cycles: None,
    })
}

/// Runs the accounting cross-check for one design over one experiment.
pub fn check_design(
    spec: &DesignSpec,
    exp: &Experiment<'_>,
    cfg: &RunConfig,
) -> Result<(), Divergence> {
    let bare = run_design(spec, exp, cfg);
    let registry = MetricsRegistry::new();
    let traced = run_design(spec, exp, &observed(cfg.clone(), &registry));
    let label = spec.label();

    if bare.stats != traced.stats {
        return fail(
            0,
            format!("{label}: attaching a sink changed the statistics"),
        );
    }
    let st = &bare.stats;
    let snap = registry.snapshot();
    let ev = |kind: &str| snap.events_by_kind.get(kind).copied().unwrap_or(0);

    if ev("walk_end") != st.walks {
        return fail(
            0,
            format!(
                "{label}: {} walk_end events for {} walks",
                ev("walk_end"),
                st.walks
            ),
        );
    }
    if ev("walk_start") != st.walks {
        return fail(
            0,
            format!(
                "{label}: {} walk_start events for {} walks",
                ev("walk_start"),
                st.walks
            ),
        );
    }
    if st.misses > st.probes {
        return fail(
            0,
            format!("{label}: misses {} > probes {}", st.misses, st.probes),
        );
    }

    let is_ix = matches!(
        spec,
        DesignSpec::MetalIx { .. } | DesignSpec::Metal { .. } | DesignSpec::MetalPrivate { .. }
    );
    if is_ix {
        // The trace's non-scan hits must reconstruct the hit histogram.
        let traced_hits: Vec<u64> = (0..st.hit_levels.len() as u8)
            .map(|l| snap.hits_by_level.get(&l).copied().unwrap_or(0))
            .collect();
        if traced_hits != st.hit_levels {
            return fail(
                0,
                format!(
                    "{label}: traced hits {traced_hits:?} != stats.hit_levels {:?}",
                    st.hit_levels
                ),
            );
        }
        let histo: u64 = st.hit_levels.iter().sum();
        if histo > st.probes.saturating_sub(st.misses) {
            return fail(
                0,
                format!(
                    "{label}: hit histogram total {histo} exceeds probe hits {}",
                    st.probes - st.misses
                ),
            );
        }
    } else if ev("ix_probe") != 0 {
        return fail(
            0,
            format!(
                "{label}: emitted {} ix_probe events without an IX-cache",
                ev("ix_probe")
            ),
        );
    }
    Ok(())
}

/// Generates one small experiment and checks the full design roster on
/// it, including the cross-design `found_walks` invariant.
pub fn check_designs_case(seed: u64) -> Result<(), Divergence> {
    let mut rng = SplitRng::stream(seed, 0xde5170);
    let n_keys = rng.gen_range(40..400u64) as usize;
    let stride = rng.gen_range(1..9u64);
    let keys: Vec<u64> = (0..n_keys as u64).map(|i| i * stride).collect();
    let max_keys = *crate::scenario::pick(&mut rng, &[4, 8, 16]);
    let tree = BPlusTree::bulk_load(&keys, max_keys, Addr(0x4000_0000), 16);

    let n_reqs = rng.gen_range(30..200u64) as usize;
    let span = n_keys as u64 * stride;
    let mut requests = Vec::with_capacity(n_reqs);
    let mut hot = 0u64;
    for _ in 0..n_reqs {
        let key = match rng.gen_range(0..5u64) {
            // Hot key: exercises pinning and reuse.
            0 => hot,
            // Sequential drift: exercises range reuse.
            1 => {
                hot = (hot + stride) % span.max(1);
                hot
            }
            // Present key.
            2 => keys[rng.gen_range(0..keys.len())],
            // Uniform (possibly absent) key.
            _ => rng.gen_range(0..span.max(1) + stride),
        };
        let mut req = WalkRequest::lookup(key);
        if rng.gen_range(0..4u64) == 0 {
            req = req.with_scan(rng.gen_range(1..4u64) as u32);
        }
        requests.push(req);
    }
    let exp = Experiment::single(&tree, &requests);

    let entries = *crate::scenario::pick(&mut rng, &[16, 64, 256]);
    let ix = IxConfig {
        entries,
        ways: 16.min(entries),
        key_block_bits: rng.gen_range(2..8u64) as u32,
        wide_fraction: 0.5,
    };
    let specs = [
        DesignSpec::Stream,
        DesignSpec::Address {
            entries,
            ways: 16.min(entries),
        },
        DesignSpec::FaOpt { entries },
        DesignSpec::XCache {
            entries,
            ways: 16.min(entries),
        },
        DesignSpec::MetalIx { ix },
    ];
    let cfg = RunConfig::default().with_lanes(4);

    let mut found = Vec::new();
    for spec in &specs {
        check_design(spec, &exp, &cfg)?;
        found.push(run_design(spec, &exp, &cfg).stats.found_walks);
    }
    if found.iter().any(|&f| f != found[0]) {
        return fail(
            0,
            format!(
                "found_walks differs across designs: {found:?} (cache must not change results)"
            ),
        );
    }
    Ok(())
}

/// The mutating variant of [`check_designs_case`]: the request stream
/// interleaves INSERT/UPDATE/DELETE walks with lookups and scans, so a
/// stale short-circuit in any cached design changes its `found_walks`
/// (or structural counters) relative to the cache-less Stream ground
/// truth. The tree holds even keys only, so `present + 1` is always a
/// genuinely fresh insert that forces leaf splits as the run proceeds.
pub fn check_designs_case_crud(seed: u64) -> Result<(), Divergence> {
    let mut rng = SplitRng::stream(seed, 0xc40d_de51);
    let n_keys = rng.gen_range(40..400u64) as usize;
    let stride = 2u64;
    let keys: Vec<u64> = (0..n_keys as u64).map(|i| i * stride).collect();
    let max_keys = *crate::scenario::pick(&mut rng, &[4, 8, 16]);
    let tree = BPlusTree::bulk_load(&keys, max_keys, Addr(0x4000_0000), 16);

    let n_reqs = rng.gen_range(30..200u64) as usize;
    let span = n_keys as u64 * stride;
    let mut requests = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        let present = keys[rng.gen_range(0..keys.len())];
        let req = match rng.gen_range(0..10u64) {
            0 | 1 => WalkRequest::lookup(present + 1).with_op(OpKind::Insert),
            2 => WalkRequest::lookup(present).with_op(OpKind::Delete),
            3 => WalkRequest::lookup(present).with_op(OpKind::Update),
            _ => {
                let key = rng.gen_range(0..span.max(1) + stride);
                let mut r = WalkRequest::lookup(key);
                if rng.gen_range(0..4u64) == 0 {
                    r = r.with_scan(rng.gen_range(1..4u64) as u32);
                }
                r
            }
        };
        requests.push(req);
    }
    let exp = Experiment::single(&tree, &requests);

    let entries = *crate::scenario::pick(&mut rng, &[16, 64, 256]);
    let ix = IxConfig {
        entries,
        ways: 16.min(entries),
        key_block_bits: rng.gen_range(2..8u64) as u32,
        wide_fraction: 0.5,
    };
    let specs = [
        DesignSpec::Stream,
        DesignSpec::Address {
            entries,
            ways: 16.min(entries),
        },
        DesignSpec::FaOpt { entries },
        DesignSpec::XCache {
            entries,
            ways: 16.min(entries),
        },
        DesignSpec::MetalIx { ix },
    ];
    let cfg = RunConfig::default().with_lanes(4);

    // Results and tree evolution must be design-independent: every
    // model replays the same writes on its private tree, so found
    // counts and structural mutation counters have to agree with the
    // cache-less ground truth.
    let mut outcomes = Vec::new();
    for spec in &specs {
        check_design(spec, &exp, &cfg)?;
        let st = run_design(spec, &exp, &cfg).stats;
        outcomes.push((
            spec.label(),
            st.found_walks,
            st.write_walks,
            st.node_splits,
            st.node_merges,
        ));
    }
    if outcomes.iter().any(|o| {
        (o.1, o.2, o.3, o.4) != (outcomes[0].1, outcomes[0].2, outcomes[0].3, outcomes[0].4)
    }) {
        return fail(
            0,
            format!(
                "mutated run diverges across designs (label, found, writes, splits, merges): \
                 {outcomes:?} (a stale cached short-circuit changes results)"
            ),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_cases_pass() {
        for seed in 0..6 {
            if let Err(d) = check_designs_case(seed) {
                panic!("seed {seed}: {d}");
            }
        }
    }

    #[test]
    fn design_crud_cases_pass() {
        for seed in 0..6 {
            if let Err(d) = check_designs_case_crud(seed) {
                panic!("seed {seed}: {d}");
            }
        }
    }

    #[test]
    fn fence_abandonment_regression() {
        // Swarm-found divergence (metal-ix one found_walk short of the
        // other designs): boundary deletes shrank a leaf's bounds, a
        // later level-1 rebalance rebuilt the separators from those
        // bounds and re-routed the abandoned margin, and the stale
        // span was emitted at level 1 only — so a level-0 tag spanning
        // the old boundary kept serving a stale short-circuit. Fixed by
        // staling structural ops at every level 0..=L.
        if let Err(d) = check_designs_case_crud(9117530005772300191) {
            panic!("{d}");
        }
    }
}
