//! `analyze` — offline forensic report generator for `--trace-out`
//! JSONL event traces.
//!
//! Demultiplexes the trace into its (run, design, shard) streams —
//! order matters *within* a stream (reuse distances, regret windows) but
//! never across streams — replays each through the same
//! [`metal_obs::StreamAnalyzer`] core the in-process `--analyze-out`
//! path uses, merges the per-stream reductions by design, and writes:
//!
//! - a schema-tagged, associatively merged `ANALYSIS.json`
//!   (`metal-analysis-v1`), self-validated before writing;
//! - a self-contained single-file HTML report (inline SVG reuse/regret
//!   histograms, per-set occupancy heatmap, tuner-decision timeline).
//!
//! With `--manifest <manifest.json>` the miss-taxonomy reference cache
//! is sized from the run's recorded `cache_bytes` argument; otherwise
//! the harness default (64 KiB) is assumed. When the manifest carries
//! native-backend reports (measured walks/sec, page I/O), the HTML
//! report additionally gains a measured-vs-modeled table pairing them
//! with the simulator's numbers for the same runs.
//!
//! With `--epoch SPEC` (`cycles:N` / `walks:M`) every stream is also
//! sliced into deterministic telemetry windows: the document gains a
//! per-design `series` section (window-sum conserved against the
//! whole-run aggregates), and the anomaly watchdogs run over it,
//! appending an `alerts` section when one fires.
//!
//! `analyze --validate <ANALYSIS.json>` instead checks an existing
//! document: schema tag, required per-design sections, and the
//! conservation invariants (ledger retirement, regret verdicts, block
//! classification, window sums). CI uses this as the schema gate.
//! `--deny-alerts` additionally turns a non-empty `alerts` section into
//! a validation failure.
//!
//! The trace is read line by line through [`metal_obs::JsonlReader`] —
//! multi-gigabyte traces replay in constant memory.
//!
//! Exit codes follow the harness-wide table in PERFORMANCE.md: 0 ok,
//! 1 validation failure, 2 usage/I-O error.
//!
//! Run: `cargo run -p metal-bench --bin analyze -- trace.jsonl
//!       [--manifest manifest.json] [--out ANALYSIS.json] [--html report.html]`

use metal_bench::{exit, fail};
use metal_obs::watchdog::{analysis_document, scan_analysis, WatchdogConfig};
use metal_obs::{
    render_html_with_measured, validate_analysis, validate_analysis_gated, Json, JsonlReader,
    MeasuredRow, StreamAnalyzer, TraceAnalysis,
};
use metal_sim::epoch::EpochSpec;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn help() -> ExitCode {
    println!(
        "analyze: build a forensic report from a --trace-out JSONL event trace\n\
         \n\
         Usage: analyze <trace.jsonl> [--manifest <manifest.json>]\n\
         \x20                         [--out <ANALYSIS.json>] [--html <report.html>]\n\
         \x20                         [--epoch <cycles:N|walks:M>] [--deny-alerts]\n\
         \x20      analyze --validate <ANALYSIS.json> [--deny-alerts]\n\
         \n\
         Replays every (run, design, shard) stream of the trace through the\n\
         entry ledger, reuse-distance profiler, miss taxonomy and eviction-\n\
         regret meter, merges per design, and writes a schema-tagged\n\
         ANALYSIS.json (default: ANALYSIS.json next to the trace) plus a\n\
         self-contained HTML report (default: the output path with an .html\n\
         extension). --manifest sizes the taxonomy's fully-associative\n\
         reference from the run's recorded cache_bytes.\n\
         \n\
         --epoch slices each stream into deterministic telemetry windows:\n\
         the document gains a per-design 'series' section and the anomaly\n\
         watchdogs (hit-rate collapse, scan storm, regret spike) run over\n\
         it, appending an 'alerts' section when one fires. --deny-alerts\n\
         turns any alert into a validation failure (exit 1).\n\
         \n\
         --validate checks an existing ANALYSIS.json instead: schema tag,\n\
         required sections, and conservation invariants (including window\n\
         sums vs whole-run aggregates); exits non-zero on the first\n\
         violation.\n\
         \n\
         Traces, manifests and the analysis schema are documented in\n\
         README.md's Telemetry section and DESIGN.md §8."
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: analyze <trace.jsonl> [--manifest <m.json>] [--out <a.json>] [--html <r.html>]\n\
         \x20              [--epoch <cycles:N|walks:M>] [--deny-alerts]\n\
         \x20      analyze --validate <ANALYSIS.json> [--deny-alerts]"
    );
    ExitCode::from(exit::USAGE_IO as u8)
}

/// Reads and parses a whole JSON document, exiting with context on
/// failure.
fn read_json(path: &PathBuf, what: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {what} {}: {e}", path.display())));
    Json::parse(&text)
        .unwrap_or_else(|e| fail(format_args!("bad JSON in {what} {}: {e}", path.display())))
}

/// Extracts one measured-vs-modeled row per native-backend report in
/// the manifest. The modeled cycle count comes from the paired `:sim`
/// report when the run recorded one under the `fig_native` naming
/// convention (`<design>:sim` / `<design>:native`); other native runs
/// show their measured side alone.
fn measured_rows(manifest: &Json) -> Vec<MeasuredRow> {
    let Some(reports) = manifest.get("reports").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let label = |r: &Json, k: &str| {
        r.get(k)
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };
    let mut rows = Vec::new();
    for r in reports {
        let Some(n) = r.get("native") else { continue };
        let stats = |k: &str| {
            r.get("stats")
                .and_then(|s| s.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let native = |k: &str| n.get(k).and_then(Json::as_u64).unwrap_or(0);
        let (workload, design) = (label(r, "workload"), label(r, "design"));
        let sim_stats = design.strip_suffix(":native").and_then(|base| {
            let sim = format!("{base}:sim");
            reports
                .iter()
                .find(|s| label(s, "workload") == workload && label(s, "design") == sim)
                .and_then(|s| s.get("stats"))
        });
        let modeled_cycles = sim_stats
            .and_then(|s| s.get("exec_cycles"))
            .and_then(Json::as_u64);
        // The paired sim run's predicted exposed-stall fraction, when
        // its stats carried a cycle breakdown; the measured side is the
        // native run's page-I/O share of wall time.
        let modeled_stall_fraction = sim_stats
            .and_then(|s| s.get("breakdown"))
            .and_then(|b| b.get("stall_fraction"))
            .and_then(Json::as_f64);
        rows.push(MeasuredRow {
            walks: stats("walks"),
            modeled_cycles,
            modeled_node_fetches: stats("dram_node_reads"),
            walks_per_sec: n.get("walks_per_sec").and_then(Json::as_f64).unwrap_or(0.0),
            page_reads: native("page_reads"),
            page_writes: native("page_writes"),
            hot_hits: native("hot_hits"),
            cold_reads: native("cold_reads"),
            modeled_stall_fraction,
            measured_page_io_fraction: n
                .get("page_io_fraction")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            workload,
            design,
        });
    }
    rows
}

fn validate_mode(path: &PathBuf, deny_alerts: bool) -> ExitCode {
    let doc = read_json(path, "analysis");
    match validate_analysis_gated(&doc, deny_alerts) {
        Ok(()) => {
            println!(
                "analyze: {} is a valid, conserved metal-analysis document",
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("analyze: INVALID {}: {e}", path.display());
            ExitCode::from(exit::VALIDATION as u8)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return help();
    }
    let mut trace_path: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut html_path: Option<PathBuf> = None;
    let mut validate_path: Option<PathBuf> = None;
    let mut epoch: Option<EpochSpec> = None;
    let mut deny_alerts = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => PathBuf::from(p),
            None => fail(format_args!("{flag} needs a path argument")),
        };
        match arg.as_str() {
            "--manifest" => manifest_path = Some(path_arg("--manifest")),
            "--out" => out_path = Some(path_arg("--out")),
            "--html" => html_path = Some(path_arg("--html")),
            "--validate" => validate_path = Some(path_arg("--validate")),
            "--epoch" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--epoch needs a spec argument"));
                epoch = Some(
                    EpochSpec::parse(v).unwrap_or_else(|e| fail(format_args!("--epoch {v}: {e}"))),
                );
            }
            "--deny-alerts" => deny_alerts = true,
            p if trace_path.is_none() && !p.starts_with('-') => trace_path = Some(PathBuf::from(p)),
            _ => return usage(),
        }
    }

    if let Some(p) = validate_path {
        if trace_path.is_some() {
            return usage();
        }
        return validate_mode(&p, deny_alerts);
    }
    let Some(trace_path) = trace_path else {
        return usage();
    };

    // The taxonomy's fully-associative reference is sized to the design
    // budget in 64 B blocks; the manifest records the run's actual
    // --cache-kb, the harness default applies otherwise. Native-backend
    // reports in the manifest additionally feed the measured-vs-modeled
    // table of the HTML report.
    let mut measured: Vec<MeasuredRow> = Vec::new();
    let budget_blocks = match &manifest_path {
        Some(p) => {
            let manifest = read_json(p, "manifest");
            measured = measured_rows(&manifest);
            let field = manifest.get("args").and_then(|a| a.get("cache_bytes"));
            // Manifest args are recorded as strings; accept a plain
            // number too for hand-built manifests.
            field
                .and_then(Json::as_u64)
                .or_else(|| field.and_then(Json::as_str).and_then(|s| s.parse().ok()))
                .unwrap_or_else(|| {
                    fail(format_args!(
                        "manifest {} records no cache_bytes argument",
                        p.display()
                    ))
                }) as usize
                / 64
        }
        None => 64 * 1024 / 64,
    }
    .max(1);

    let mut reader = JsonlReader::open(&trace_path)
        .unwrap_or_else(|e| fail(format_args!("cannot open {}: {e}", trace_path.display())));
    // One analyzer per (run, design, shard) stream; lines of one stream
    // appear in emission order, so replay order is stream order. The
    // reader streams line by line, so trace size never bounds memory.
    let mut streams: BTreeMap<(String, String, u64), StreamAnalyzer> = BTreeMap::new();
    let mut lines = 0u64;
    loop {
        let v = match reader.next_line() {
            Ok(Some(v)) => v,
            Ok(None) => break,
            Err(e) => fail(format_args!("{}: {e}", trace_path.display())),
        };
        let label = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let shard = v.get("shard").and_then(Json::as_u64).unwrap_or(0);
        streams
            .entry((label("run"), label("design"), shard))
            .or_insert_with(|| StreamAnalyzer::new(budget_blocks).with_epoch(epoch))
            .observe_json(&v);
        lines += 1;
    }
    if streams.is_empty() {
        fail(format_args!(
            "{}: no trace events found",
            trace_path.display()
        ));
    }

    let n_streams = streams.len();
    let mut analysis = TraceAnalysis::default();
    for ((_, design, _), analyzer) in streams {
        analysis.fold(&design, analyzer.finish());
    }

    // Watchdogs only see windows, so without --epoch this is a no-op.
    let alerts = scan_analysis(&analysis, &WatchdogConfig::default());
    for a in &alerts {
        eprintln!(
            "analyze: ALERT [{}] {} at epoch {}: {}",
            a.design,
            a.kind.as_str(),
            a.epoch,
            a.detail
        );
    }
    let doc = analysis_document(&analysis, &alerts);
    if let Err(e) = validate_analysis(&doc) {
        fail(format_args!("analysis failed self-validation: {e}"));
    }
    let out_path = out_path.unwrap_or_else(|| trace_path.with_file_name("ANALYSIS.json"));
    std::fs::write(&out_path, doc.render() + "\n")
        .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", out_path.display())));
    let html_path = html_path.unwrap_or_else(|| out_path.with_extension("html"));
    let title = format!(
        "METAL forensics — {}",
        trace_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| trace_path.display().to_string())
    );
    std::fs::write(
        &html_path,
        render_html_with_measured(&analysis, &title, &measured),
    )
    .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", html_path.display())));

    println!(
        "analyze: {lines} events in {n_streams} streams across {} designs",
        analysis.designs.len()
    );
    for (design, d) in &analysis.designs {
        println!(
            "  {design}: taxonomy compulsory={} capacity={} conflict={}, \
             regret {}/{} evictions, {} zero-hit evictions",
            d.taxonomy.compulsory,
            d.taxonomy.capacity,
            d.taxonomy.conflict,
            d.regret.regretted,
            d.regret.evictions,
            d.ledger.zero_hit_evictions
        );
    }
    println!("analyze: wrote {}", out_path.display());
    println!("analyze: wrote {}", html_path.display());
    if deny_alerts && !alerts.is_empty() {
        eprintln!(
            "analyze: {} watchdog alert(s) and --deny-alerts is set",
            alerts.len()
        );
        return ExitCode::from(exit::VALIDATION as u8);
    }
    ExitCode::SUCCESS
}
