//! Streaming reuse-distance profiling and miss taxonomy over the block
//! trace (`dram_fetch` events).
//!
//! The reuse-distance profiler is Olken's order-statistics algorithm: a
//! Fenwick tree over access-time slots holds one set bit per *distinct*
//! block at the slot of its most recent access, so the number of set
//! bits after a block's previous slot is exactly the number of distinct
//! blocks touched since — the (fully-associative, LRU) stack distance.
//! Each access costs `O(log n)` and the tree grows by one slot per
//! access, so the profiler streams over arbitrarily long traces without
//! a second pass.
//!
//! The miss taxonomy replays the same block stream against two reference
//! caches:
//!
//! - an **unbounded** cache (a seen-set): a block's first touch is a
//!   **compulsory** miss;
//! - a **fully-associative LRU** of the design's entry budget: a
//!   re-touch the FA-LRU also misses is a **capacity** miss, while a
//!   re-touch the FA-LRU would have hit is a **conflict** miss
//!   (attributable to organization, not size).
//!
//! Both are order-sensitive within one stream but the resulting
//! histograms and counters are plain sums, so per-shard results merge
//! associatively (each logical shard is its own stream; see
//! [`crate::analysis`]).

use crate::json::Json;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Base-2 logarithmic histogram: bucket `b` counts values with exactly
/// `b` significant bits (`0 → bucket 0`, `1 → 1`, `2..=3 → 2`, …,
/// `u64::MAX → 64`). Merging is element-wise addition, so shard-local
/// histograms fold associatively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; 65],
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist { buckets: [0; 65] }
    }
}

impl LogHist {
    /// The bucket index `v` falls into.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw buckets.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// JSON array of bucket counts, trailing zeros trimmed.
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n != 0)
            .map_or(0, |i| i + 1);
        Json::Arr(
            self.buckets[..last]
                .iter()
                .map(|&n| Json::UInt(n))
                .collect(),
        )
    }

    /// Parses what [`Self::to_json`] wrote (shorter arrays are
    /// zero-padded). `None` on malformed input.
    pub fn from_json(v: &Json) -> Option<LogHist> {
        let arr = v.as_arr()?;
        if arr.len() > 65 {
            return None;
        }
        let mut h = LogHist::default();
        for (i, n) in arr.iter().enumerate() {
            h.buckets[i] = n.as_u64()?;
        }
        Some(h)
    }
}

/// Growable Fenwick (binary indexed) tree over 1-based positions.
///
/// Appending computes the new node's partial sum from existing prefixes
/// (`O(log n)`), which keeps the invariant without preallocation.
#[derive(Debug, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn len(&self) -> usize {
        self.tree.len()
    }

    /// Sum of positions `1..=pos`.
    fn prefix(&self, mut pos: usize) -> u64 {
        let mut s = 0;
        while pos > 0 {
            s += self.tree[pos - 1];
            pos &= pos - 1;
        }
        s
    }

    /// Adds `delta` at `pos` (1-based, must be ≤ len).
    fn add(&mut self, mut pos: usize, delta: i64) {
        while pos <= self.tree.len() {
            self.tree[pos - 1] = (self.tree[pos - 1] as i64 + delta) as u64;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// Appends a new position holding `v`.
    fn push(&mut self, v: u64) {
        let i = self.tree.len() + 1;
        let low = i & i.wrapping_neg();
        // tree[i] covers the range (i - lowbit(i), i]; everything in it
        // except the new element is already summed in earlier prefixes.
        let below = self.prefix(i - 1) - self.prefix(i - low);
        self.tree.push(below + v);
    }
}

/// Streaming Olken reuse-distance profiler over block addresses.
#[derive(Debug, Default)]
pub struct ReuseProfiler {
    fenwick: Fenwick,
    /// Block → 1-based slot of its most recent access.
    last_seen: HashMap<u64, usize>,
    /// First-touch accesses (infinite reuse distance).
    cold: u64,
    hist: LogHist,
}

impl ReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        ReuseProfiler::default()
    }

    /// Records an access to `block` and returns its reuse distance
    /// (`None` for a first touch). Distance 0 means the block was the
    /// most recently accessed one.
    pub fn observe(&mut self, block: u64) -> Option<u64> {
        let distinct = self.last_seen.len() as u64;
        let dist = match self.last_seen.get(&block).copied() {
            Some(prev) => {
                // Set bits strictly after `prev` = distinct blocks
                // touched since the previous access to `block`.
                let d = distinct - self.fenwick.prefix(prev);
                self.fenwick.add(prev, -1);
                self.hist.observe(d);
                Some(d)
            }
            None => {
                self.cold += 1;
                None
            }
        };
        self.fenwick.push(1);
        self.last_seen.insert(block, self.fenwick.len());
        dist
    }

    /// First-touch count (infinite-distance accesses).
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// The finite-distance histogram.
    pub fn hist(&self) -> &LogHist {
        &self.hist
    }
}

/// Fully-associative LRU over block addresses: the reference cache that
/// separates capacity from conflict misses. Allocate-on-miss, no
/// write-back modelling — only hit/miss behaviour matters here.
#[derive(Debug)]
pub struct FaLru {
    cap: usize,
    tick: u64,
    /// Block → last-use tick.
    last: HashMap<u64, u64>,
    /// (last-use tick, block), ordered; first element is the LRU victim.
    order: BTreeSet<(u64, u64)>,
}

impl FaLru {
    /// Creates an empty cache holding at most `cap` blocks (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        FaLru {
            cap: cap.max(1),
            tick: 0,
            last: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// Accesses `block`: returns whether it hit, allocating (and
    /// evicting the least recently used block if full) on a miss.
    pub fn access(&mut self, block: u64) -> bool {
        self.tick += 1;
        if let Some(prev) = self.last.insert(block, self.tick) {
            self.order.remove(&(prev, block));
            self.order.insert((self.tick, block));
            return true;
        }
        if self.last.len() > self.cap {
            let victim = *self.order.iter().next().expect("cache is non-empty");
            self.order.remove(&victim);
            self.last.remove(&victim.1);
        }
        self.order.insert((self.tick, block));
        false
    }
}

/// Per-class miss counts. A classified access is always a miss of the
/// design under study (the block stream is the design's DRAM traffic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaxonomyCounts {
    /// First touch of the block anywhere in the stream.
    pub compulsory: u64,
    /// Re-touch that a fully-associative LRU of the same budget also
    /// misses.
    pub capacity: u64,
    /// Re-touch the fully-associative reference would have hit.
    pub conflict: u64,
}

impl TaxonomyCounts {
    /// Sums counts (associative merge across shards).
    pub fn merge(&mut self, other: &TaxonomyCounts) {
        self.compulsory += other.compulsory;
        self.capacity += other.capacity;
        self.conflict += other.conflict;
    }

    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// JSON object with one field per class.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("compulsory".into(), Json::UInt(self.compulsory)),
            ("capacity".into(), Json::UInt(self.capacity)),
            ("conflict".into(), Json::UInt(self.conflict)),
        ])
    }
}

/// Streaming compulsory / capacity / conflict classifier.
#[derive(Debug)]
pub struct MissTaxonomy {
    seen: HashSet<u64>,
    reference: FaLru,
    counts: TaxonomyCounts,
}

impl MissTaxonomy {
    /// Creates a classifier whose fully-associative reference holds
    /// `budget_blocks` blocks (the design's capacity in 64 B blocks).
    pub fn new(budget_blocks: usize) -> Self {
        MissTaxonomy {
            seen: HashSet::new(),
            reference: FaLru::new(budget_blocks),
            counts: TaxonomyCounts::default(),
        }
    }

    /// Classifies one fetched block.
    pub fn observe(&mut self, block: u64) {
        let first = self.seen.insert(block);
        // The reference must observe every access, including first
        // touches, to model recency faithfully.
        let ref_hit = self.reference.access(block);
        if first {
            self.counts.compulsory += 1;
        } else if ref_hit {
            self.counts.conflict += 1;
        } else {
            self.counts.capacity += 1;
        }
    }

    /// The classification so far.
    pub fn counts(&self) -> &TaxonomyCounts {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_sim::rng::SplitRng;

    /// Naive stack-distance reference: scan an explicit LRU stack.
    struct NaiveStack(Vec<u64>);

    impl NaiveStack {
        fn observe(&mut self, block: u64) -> Option<u64> {
            let pos = self.0.iter().position(|&b| b == block);
            if let Some(p) = pos {
                self.0.remove(p);
            }
            self.0.insert(0, block);
            pos.map(|p| p as u64)
        }
    }

    #[test]
    fn log_hist_buckets_powers_of_two() {
        assert_eq!(LogHist::bucket_of(0), 0);
        assert_eq!(LogHist::bucket_of(1), 1);
        assert_eq!(LogHist::bucket_of(2), 2);
        assert_eq!(LogHist::bucket_of(3), 2);
        assert_eq!(LogHist::bucket_of(4), 3);
        assert_eq!(LogHist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn log_hist_json_round_trips_and_trims() {
        let mut h = LogHist::default();
        h.observe(0);
        h.observe(5);
        let j = h.to_json();
        assert_eq!(j.as_arr().unwrap().len(), 4, "trailing zeros trimmed");
        assert_eq!(LogHist::from_json(&j).unwrap(), h);
    }

    #[test]
    fn olken_matches_naive_stack_distance() {
        let mut rng = SplitRng::seed_from_u64(0x0b5e55ed);
        let mut olken = ReuseProfiler::new();
        let mut naive = NaiveStack(Vec::new());
        for _ in 0..4000 {
            // Mix of hot and cold blocks so both reuse and first touches
            // occur.
            let block = rng.gen_range(0u64..200);
            assert_eq!(olken.observe(block), naive.observe(block));
        }
        assert_eq!(olken.cold(), 200, "every block in 0..200 gets touched");
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut p = ReuseProfiler::new();
        assert_eq!(p.observe(7), None);
        assert_eq!(p.observe(7), Some(0));
        assert_eq!(p.observe(9), None);
        assert_eq!(p.observe(7), Some(1));
    }

    #[test]
    fn fa_lru_evicts_least_recently_used() {
        let mut c = FaLru::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // refresh 1; LRU is now 2
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2), "2 was evicted");
    }

    #[test]
    fn taxonomy_separates_the_three_classes() {
        // Budget 2; stream: a b c a  → a,b,c compulsory; the re-touch of
        // `a` misses the FA-LRU too (a was evicted by c) → capacity.
        let mut t = MissTaxonomy::new(2);
        for b in [1, 2, 3, 1] {
            t.observe(b);
        }
        assert_eq!(
            *t.counts(),
            TaxonomyCounts {
                compulsory: 3,
                capacity: 1,
                conflict: 0
            }
        );
        // Budget 8: the same re-touch would hit the reference → conflict.
        let mut t = MissTaxonomy::new(8);
        for b in [1, 2, 3, 1] {
            t.observe(b);
        }
        assert_eq!(t.counts().conflict, 1);
        assert_eq!(t.counts().capacity, 0);
    }

    #[test]
    fn taxonomy_merge_is_a_plain_sum() {
        let mut a = TaxonomyCounts {
            compulsory: 1,
            capacity: 2,
            conflict: 3,
        };
        let b = TaxonomyCounts {
            compulsory: 10,
            capacity: 20,
            conflict: 30,
        };
        a.merge(&b);
        assert_eq!(a.total(), 66);
    }
}
