//! Counters and derived metrics for a simulation run.
//!
//! Three families of metrics reproduce the paper's measurement axes:
//!
//! - **Miss rate** (Fig. 15): misses / probes for whichever cache design is
//!   under test.
//! - **Working set** (Fig. 16): the fraction of the index's blocks that were
//!   actually fetched from DRAM during the run.
//! - **Walk latency** (Fig. 17): per-walk latency samples aggregated into an
//!   average (plus min/max for diagnostics).
//!
//! Energy is accumulated in femtojoules and split into DRAM, cache and
//! compute/walker components (Figs. 19 and 25).

use crate::types::{BlockAddr, Cycles};
use std::collections::HashSet;

/// Tracks the set of distinct DRAM blocks touched by a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkingSet {
    blocks: HashSet<BlockAddr>,
}

impl WorkingSet {
    /// Creates an empty working set.
    pub fn new() -> Self {
        WorkingSet::default()
    }

    /// Records that `block` was fetched from DRAM.
    pub fn touch(&mut self, block: BlockAddr) {
        self.blocks.insert(block);
    }

    /// Number of distinct blocks touched.
    pub fn distinct_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Fraction of an index of `total_blocks` blocks that was touched.
    ///
    /// Returns 0.0 for an empty index to avoid division by zero.
    pub fn fraction_of(&self, total_blocks: u64) -> f64 {
        if total_blocks == 0 {
            0.0
        } else {
            self.distinct_blocks() as f64 / total_blocks as f64
        }
    }

    /// Whether a given block has been touched.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.blocks.contains(&block)
    }

    /// Whether no block has been touched.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Unions `other` into `self`. Commutative and associative: the merged
    /// set is identical whichever shard order the runner merges in.
    pub fn merge(&mut self, other: &WorkingSet) {
        self.blocks.extend(other.blocks.iter().copied());
    }
}

/// Number of log2 latency buckets: bucket 0 holds the value 0 and bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 65 buckets cover all of
/// `u64`.
pub const LATENCY_BUCKETS: usize = 65;

/// Latency distribution: count/total/min/max plus a log2-bucketed
/// histogram exposing p50/p90/p99.
///
/// The histogram merges elementwise, so shard merges stay commutative
/// and associative — merging in any grouping yields bit-identical
/// buckets and therefore bit-identical percentile estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            total: 0,
            min: 0,
            max: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

/// Log2 bucket index of a latency value (its bit length).
#[inline]
fn bucket_of(l: u64) -> usize {
    (u64::BITS - l.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (largest value the bucket can hold).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, lat: Cycles) {
        let l = lat.get();
        if self.count == 0 {
            self.min = l;
            self.max = l;
        } else {
            self.min = self.min.min(l);
            self.max = self.max.max(l);
        }
        self.count += 1;
        self.total = self.total.saturating_add(l);
        self.buckets[bucket_of(l)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when none).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when none).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw log2 histogram (`buckets[i]` = samples with bit length
    /// `i`, i.e. in `[2^(i-1), 2^i)`; bucket 0 holds zeros).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest sample, clamped to the
    /// observed `[min, max]` so single-bucket distributions report
    /// exactly. Returns 0 when there are no samples.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median latency estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile latency estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile latency estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds `other`'s samples into `self` as if every sample had been
    /// recorded here. Commutative and associative (count/total sum,
    /// min/max combine, histogram buckets add elementwise), so shard
    /// merge order cannot change the result.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
    }
}

/// Whole-run cycle-accounting totals: every simulated walk cycle
/// attributed to a cause. The components partition the summed walk
/// latency exactly — `ix_probe_cycles + compute_cycles + queue_cycles +
/// stall_cycles + hidden_cycles == walk_latency.total()` — because the
/// engine's per-walk step intervals are contiguous (each step dispatches
/// exactly when its predecessor completes).
///
/// Accumulated unconditionally (no sink required) so figure harnesses
/// can print breakdown CSVs without tracing; merges by field-wise sum,
/// so shard merges stay commutative and associative.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownTotals {
    /// Cycles spent accessing the cache SRAM (probe latency).
    pub ix_probe_cycles: u64,
    /// Cycles of walker compute (node scan, tag match).
    pub compute_cycles: u64,
    /// Cycles queued for the walker FSM or an SRAM port.
    pub queue_cycles: u64,
    /// DRAM fetch stall cycles left exposed on the critical path.
    pub stall_cycles: u64,
    /// DRAM wait cycles hidden under sibling compute in an MLP window
    /// (always 0 at `mlp_width == 1`).
    pub hidden_cycles: u64,
}

impl BreakdownTotals {
    /// Sum of all components (equals the summed walk latency).
    pub fn total(&self) -> u64 {
        self.ix_probe_cycles
            .saturating_add(self.compute_cycles)
            .saturating_add(self.queue_cycles)
            .saturating_add(self.stall_cycles)
            .saturating_add(self.hidden_cycles)
    }

    /// Fraction of all attributed cycles spent in exposed DRAM stall
    /// (0.0 when nothing has been attributed yet).
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / total as f64
        }
    }

    /// Folds another shard's totals into `self` (field-wise sum).
    pub fn merge(&mut self, other: &BreakdownTotals) {
        self.ix_probe_cycles = self.ix_probe_cycles.saturating_add(other.ix_probe_cycles);
        self.compute_cycles = self.compute_cycles.saturating_add(other.compute_cycles);
        self.queue_cycles = self.queue_cycles.saturating_add(other.queue_cycles);
        self.stall_cycles = self.stall_cycles.saturating_add(other.stall_cycles);
        self.hidden_cycles = self.hidden_cycles.saturating_add(other.hidden_cycles);
    }
}

/// Complete statistics for one simulated run of one cache design.
///
/// Field-by-field equality (`PartialEq`) is part of the public contract:
/// the sharded runner asserts `run(shards = 1) == run(shards = k)` on
/// whole `RunStats` values, so every field must be deterministic.
///
/// ```
/// use metal_sim::stats::RunStats;
///
/// let mut shard_a = RunStats::new();
/// shard_a.probes = 100;
/// shard_a.misses = 25;
/// let mut shard_b = RunStats::new();
/// shard_b.probes = 100;
/// shard_b.misses = 5;
///
/// // Shard merging is associative and exact (see the runner docs).
/// shard_a.merge(&shard_b);
/// assert_eq!(shard_a.probes, 200);
/// assert_eq!(shard_a.miss_rate(), 0.15);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Cache probes issued (IX-cache, address cache or X-Cache).
    pub probes: u64,
    /// Cache probe misses.
    pub misses: u64,
    /// Index-node reads that went to DRAM.
    pub dram_node_reads: u64,
    /// Per-walk latency samples.
    pub walk_latency: LatencyStats,
    /// Number of completed walks.
    pub walks: u64,
    /// Walks whose key was found in the index. Cache organization must
    /// never change this — it is a cross-design correctness invariant.
    pub found_walks: u64,
    /// Total execution time of the run (completion of last walk).
    pub exec_cycles: Cycles,
    /// Cache dynamic energy (fJ): probes × per-access cost.
    pub cache_energy_fj: u64,
    /// DRAM dynamic energy (fJ), mirrored from the DRAM model.
    pub dram_energy_fj: u64,
    /// Compute-tile energy (fJ): ops × per-op cost.
    pub compute_energy_fj: u64,
    /// Walker + pattern-controller energy (fJ).
    pub walker_energy_fj: u64,
    /// Total compute operations retired.
    pub compute_ops: u64,
    /// Distinct DRAM blocks touched.
    pub distinct_blocks: u64,
    /// The distinct DRAM blocks themselves, kept so shard merges can
    /// union footprints exactly instead of summing overlapping counts.
    pub working_set: WorkingSet,
    /// Total number of blocks in the index (for working-set fraction).
    pub index_blocks: u64,
    /// Sum over working-set windows of the distinct index blocks touched
    /// in that window, each clamped to `index_blocks` (Fig. 16's metric
    /// before the division). Kept as an integer sum — not a pre-divided
    /// float average — so shard merges are exact and associative.
    pub ws_touched_sum: u64,
    /// Number of working-set windows that contributed to
    /// `ws_touched_sum`.
    pub ws_windows: u64,
    /// Total DRAM bytes transferred.
    pub dram_bytes: u64,
    /// Nodes inserted into the cache under test.
    pub inserts: u64,
    /// Nodes the descriptor chose to bypass (METAL only).
    pub bypasses: u64,
    /// Number of walk steps short-circuited by cache hits (nodes *not*
    /// walked thanks to kick-starting below the root).
    pub levels_skipped: u64,
    /// Histogram of probe-hit levels (`hit_levels[l]` = hits that landed
    /// on a level-`l` entry); diagnostic for reach-vs-short-circuit.
    pub hit_levels: Vec<u64>,
    /// Walks carrying a write op (INSERT/UPDATE/DELETE) that mutated —
    /// or attempted to mutate — the index.
    pub write_walks: u64,
    /// Index-node splits triggered by insert overflow.
    pub node_splits: u64,
    /// Index-node merges/rebalances triggered by delete underflow.
    pub node_merges: u64,
    /// Cache entries killed or shrunk by the range-invalidation
    /// protocol that keeps cached tags coherent with mutations.
    pub entries_invalidated: u64,
    /// Cycle-accounting breakdown of the summed walk latency (simulator
    /// backend only; stays zeroed for native runs, whose measured phase
    /// timers live in `NativeMetrics` instead).
    pub breakdown: BreakdownTotals,
}

impl RunStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Miss rate = misses / probes (0.0 when no probes).
    pub fn miss_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.misses as f64 / self.probes as f64
        }
    }

    /// Hit rate = 1 − miss rate.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }

    /// Fraction of the index touched in DRAM (Fig. 16's metric): the
    /// windowed measurement when present, the whole-run ratio otherwise.
    pub fn working_set_fraction(&self) -> f64 {
        if self.ws_windows > 0 && self.ws_touched_sum > 0 && self.index_blocks > 0 {
            (self.ws_touched_sum as f64 / (self.ws_windows * self.index_blocks) as f64).min(1.0)
        } else if self.index_blocks == 0 {
            0.0
        } else {
            (self.distinct_blocks as f64 / self.index_blocks as f64).min(1.0)
        }
    }

    /// Mean walk latency in cycles (Fig. 17's metric).
    pub fn avg_walk_latency(&self) -> f64 {
        self.walk_latency.mean()
    }

    /// Total on-chip + DRAM energy in femtojoules.
    pub fn total_energy_fj(&self) -> u64 {
        self.cache_energy_fj
            .saturating_add(self.dram_energy_fj)
            .saturating_add(self.compute_energy_fj)
            .saturating_add(self.walker_energy_fj)
    }

    /// Total on-chip energy (excluding DRAM), for Fig. 25's breakdown.
    pub fn onchip_energy_fj(&self) -> u64 {
        self.cache_energy_fj
            .saturating_add(self.compute_energy_fj)
            .saturating_add(self.walker_energy_fj)
    }

    /// Folds the statistics of another shard of the same run into `self`.
    ///
    /// The operation is commutative and associative, so a parallel runner
    /// may merge shard results in any grouping and obtain bit-identical
    /// totals. Per-field semantics:
    ///
    /// - event counters (probes, misses, walks, energy, bytes, …) sum;
    /// - `walk_latency` merges sample populations (count/total/min/max);
    /// - `exec_cycles` takes the max — shards model hardware partitions
    ///   executing in parallel, so the run ends when the slowest shard
    ///   does;
    /// - `working_set` unions, and `distinct_blocks` becomes the union's
    ///   size (shards that touch the same block must not double count
    ///   it) plus each side's *count-only surplus* — the part of its
    ///   `distinct_blocks` not represented in its block set — so sides
    ///   carrying only a count (empty `working_set`, nonzero count)
    ///   still contribute, and the mixed set/count case stays
    ///   commutative and associative;
    /// - `ws_touched_sum`/`ws_windows` sum, preserving the exact global
    ///   per-window average;
    /// - `hit_levels` sums elementwise;
    /// - `index_blocks` takes the max (every shard sees the same index).
    pub fn merge(&mut self, other: &RunStats) {
        self.probes = self.probes.saturating_add(other.probes);
        self.misses = self.misses.saturating_add(other.misses);
        self.dram_node_reads = self.dram_node_reads.saturating_add(other.dram_node_reads);
        self.walk_latency.merge(&other.walk_latency);
        self.walks = self.walks.saturating_add(other.walks);
        self.found_walks = self.found_walks.saturating_add(other.found_walks);
        self.exec_cycles = self.exec_cycles.max(other.exec_cycles);
        self.cache_energy_fj = self.cache_energy_fj.saturating_add(other.cache_energy_fj);
        self.dram_energy_fj = self.dram_energy_fj.saturating_add(other.dram_energy_fj);
        self.compute_energy_fj = self
            .compute_energy_fj
            .saturating_add(other.compute_energy_fj);
        self.walker_energy_fj = self.walker_energy_fj.saturating_add(other.walker_energy_fj);
        self.compute_ops = self.compute_ops.saturating_add(other.compute_ops);
        // Count-only surplus: blocks a side counted without carrying the
        // set itself. Computed before the union so each side's surplus is
        // measured against its own set; summing the surpluses keeps the
        // mixed set/count merge associative.
        let self_surplus = self
            .distinct_blocks
            .saturating_sub(self.working_set.distinct_blocks());
        let other_surplus = other
            .distinct_blocks
            .saturating_sub(other.working_set.distinct_blocks());
        self.working_set.merge(&other.working_set);
        self.distinct_blocks = self
            .working_set
            .distinct_blocks()
            .saturating_add(self_surplus)
            .saturating_add(other_surplus);
        self.index_blocks = self.index_blocks.max(other.index_blocks);
        self.ws_touched_sum = self.ws_touched_sum.saturating_add(other.ws_touched_sum);
        self.ws_windows = self.ws_windows.saturating_add(other.ws_windows);
        self.dram_bytes = self.dram_bytes.saturating_add(other.dram_bytes);
        self.inserts = self.inserts.saturating_add(other.inserts);
        self.bypasses = self.bypasses.saturating_add(other.bypasses);
        self.levels_skipped = self.levels_skipped.saturating_add(other.levels_skipped);
        self.write_walks = self.write_walks.saturating_add(other.write_walks);
        self.node_splits = self.node_splits.saturating_add(other.node_splits);
        self.node_merges = self.node_merges.saturating_add(other.node_merges);
        self.entries_invalidated = self
            .entries_invalidated
            .saturating_add(other.entries_invalidated);
        self.breakdown.merge(&other.breakdown);
        if self.hit_levels.len() < other.hit_levels.len() {
            self.hit_levels.resize(other.hit_levels.len(), 0);
        }
        for (l, n) in other.hit_levels.iter().enumerate() {
            self.hit_levels[l] = self.hit_levels[l].saturating_add(*n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_dedupes() {
        let mut ws = WorkingSet::new();
        ws.touch(BlockAddr::new(1));
        ws.touch(BlockAddr::new(1));
        ws.touch(BlockAddr::new(2));
        assert_eq!(ws.distinct_blocks(), 2);
        assert!(ws.contains(BlockAddr::new(1)));
        assert!(!ws.contains(BlockAddr::new(3)));
    }

    #[test]
    fn working_set_fraction_handles_empty_index() {
        let ws = WorkingSet::new();
        assert_eq!(ws.fraction_of(0), 0.0);
    }

    #[test]
    fn working_set_fraction_basic() {
        let mut ws = WorkingSet::new();
        for b in 0..25 {
            ws.touch(BlockAddr::new(b));
        }
        assert!((ws.fraction_of(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_aggregate() {
        let mut ls = LatencyStats::default();
        assert_eq!(ls.mean(), 0.0);
        ls.record(Cycles::new(10));
        ls.record(Cycles::new(20));
        ls.record(Cycles::new(60));
        assert_eq!(ls.count(), 3);
        assert_eq!(ls.min(), 10);
        assert_eq!(ls.max(), 60);
        assert!((ls.mean() - 30.0).abs() < 1e-12);
        assert_eq!(ls.total(), 90);
    }

    #[test]
    fn latency_histogram_buckets_by_log2() {
        let mut ls = LatencyStats::default();
        for l in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            ls.record(Cycles::new(l));
        }
        let b = ls.buckets();
        assert_eq!(b[0], 1, "value 0");
        assert_eq!(b[1], 1, "value 1");
        assert_eq!(b[2], 2, "values 2..4");
        assert_eq!(b[3], 2, "values 4..8");
        assert_eq!(b[4], 1, "values 8..16");
        assert_eq!(b[11], 1, "value 1024");
        assert_eq!(b.iter().sum::<u64>(), ls.count());
    }

    #[test]
    fn latency_percentiles_bound_the_distribution() {
        let mut ls = LatencyStats::default();
        for l in 1..=1000u64 {
            ls.record(Cycles::new(l));
        }
        // Bucket upper bounds over-approximate but never exceed max and
        // never undershoot the true quantile's bucket.
        assert!(ls.p50() >= 500 && ls.p50() <= 1000);
        assert!(ls.p90() >= 900 && ls.p90() <= 1000);
        assert!(ls.p99() >= 990 && ls.p99() <= 1000);
        assert!(ls.p50() <= ls.p90() && ls.p90() <= ls.p99());
    }

    #[test]
    fn latency_percentiles_exact_for_degenerate_cases() {
        let empty = LatencyStats::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);
        let mut one = LatencyStats::default();
        one.record(Cycles::new(37));
        // Clamping to [min, max] makes single-value distributions exact.
        assert_eq!(one.p50(), 37);
        assert_eq!(one.p99(), 37);
    }

    #[test]
    fn latency_histogram_merge_matches_recording() {
        let mut all = LatencyStats::default();
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for (i, l) in [0u64, 5, 9, 200, 3_000, 70_000, 7, 8].iter().enumerate() {
            all.record(Cycles::new(*l));
            if i % 3 == 0 {
                a.record(Cycles::new(*l));
            } else {
                b.record(Cycles::new(*l));
            }
        }
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab, all, "buckets merge elementwise");
        assert_eq!(ab.p99(), all.p99());
    }

    #[test]
    fn run_stats_miss_rate() {
        let mut s = RunStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        s.probes = 10;
        s.misses = 4;
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn run_stats_energy_totals() {
        let s = RunStats {
            cache_energy_fj: 10,
            dram_energy_fj: 100,
            compute_energy_fj: 5,
            walker_energy_fj: 1,
            ..RunStats::new()
        };
        assert_eq!(s.total_energy_fj(), 116);
        assert_eq!(s.onchip_energy_fj(), 16);
    }

    #[test]
    fn latency_merge_matches_recording() {
        let mut all = LatencyStats::default();
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for (i, l) in [7u64, 3, 90, 12, 55].iter().enumerate() {
            all.record(Cycles::new(*l));
            if i % 2 == 0 {
                a.record(Cycles::new(*l));
            } else {
                b.record(Cycles::new(*l));
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all, "merge is commutative");
        let empty = LatencyStats::default();
        let mut with_empty = all;
        with_empty.merge(&empty);
        assert_eq!(with_empty, all, "empty side is the identity");
    }

    #[test]
    fn run_stats_merge_unions_working_sets() {
        let mut a = RunStats::new();
        let mut b = RunStats::new();
        for blk in [1u64, 2, 3] {
            a.working_set.touch(BlockAddr::new(blk));
        }
        for blk in [3u64, 4] {
            b.working_set.touch(BlockAddr::new(blk));
        }
        a.distinct_blocks = 3;
        b.distinct_blocks = 2;
        a.merge(&b);
        assert_eq!(a.distinct_blocks, 4, "shared block 3 counted once");
    }

    #[test]
    fn run_stats_merge_mixed_set_and_count_only() {
        // One side carries a block set, the other only a count (e.g. a
        // deserialized summary): the count must survive the merge, in
        // either order, and merging a third count-only side must not
        // discard earlier count-only contributions.
        let set_side = {
            let mut s = RunStats::new();
            for blk in [1u64, 2, 3] {
                s.working_set.touch(BlockAddr::new(blk));
            }
            s.distinct_blocks = 3;
            s
        };
        let count_b = RunStats {
            distinct_blocks: 5,
            ..RunStats::new()
        };
        let count_c = RunStats {
            distinct_blocks: 7,
            ..RunStats::new()
        };

        let mut ab = set_side.clone();
        ab.merge(&count_b);
        assert_eq!(ab.distinct_blocks, 8, "count-only side must survive");
        let mut ba = count_b.clone();
        ba.merge(&set_side);
        assert_eq!(ba.distinct_blocks, 8, "merge is commutative");

        ab.merge(&count_c);
        let mut bc = count_b.clone();
        bc.merge(&count_c);
        let mut a_bc = set_side.clone();
        a_bc.merge(&bc);
        assert_eq!(ab.distinct_blocks, 15);
        assert_eq!(
            a_bc.distinct_blocks, ab.distinct_blocks,
            "merge is associative in the mixed case"
        );
    }

    #[test]
    fn run_stats_merge_takes_max_exec_cycles() {
        let mut a = RunStats {
            exec_cycles: Cycles::new(100),
            walks: 10,
            ..RunStats::new()
        };
        let b = RunStats {
            exec_cycles: Cycles::new(250),
            walks: 5,
            ..RunStats::new()
        };
        a.merge(&b);
        assert_eq!(a.exec_cycles.get(), 250);
        assert_eq!(a.walks, 15);
    }

    #[test]
    fn run_stats_merge_averages_ws_windows_exactly() {
        // Windows touching 50/100, then 10/100 of the index: the merged
        // average is (50 + 10) / (3 × 100) = 0.2.
        let mut a = RunStats {
            ws_touched_sum: 50,
            ws_windows: 2,
            index_blocks: 100,
            ..RunStats::new()
        };
        let b = RunStats {
            ws_touched_sum: 10,
            ws_windows: 1,
            index_blocks: 100,
            ..RunStats::new()
        };
        a.merge(&b);
        assert!((a.working_set_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn working_set_fraction_clamped() {
        let s = RunStats {
            distinct_blocks: 200,
            index_blocks: 100,
            ..RunStats::new()
        };
        // Data blocks outside the index can inflate the count; the fraction
        // is clamped to 1.0 because the metric is "fraction of the index".
        assert_eq!(s.working_set_fraction(), 1.0);
    }
}
