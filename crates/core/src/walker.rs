//! The microcoded walk FSM (paper Fig. 9).
//!
//! METAL's miss path "repurposes the prior microcode engines that the DSAs
//! already include": the walker is compiled to a small instruction table
//! and multiplexes walks across its yield points — *Wait* (the node refill
//! from DRAM) and *Search* (scanning the fetched node's sorted keys).
//!
//! This module implements that artifact literally: [`WalkOp`] is the
//! microcode ISA, [`compile_walk`] produces the paper's four-state program
//! (fetch → search → branch → emit), and [`Microwalker`] interprets it
//! against any [`WalkIndex`], yielding the same timed steps the planner in
//! [`crate::models`] emits. The equivalence between the interpreter and
//! the planner's direct loop is tested here and keeps both honest.

use metal_index::arena::NodeId;
use metal_index::walk::{Descend, WalkIndex};
use metal_sim::engine::WalkStep;
use metal_sim::types::{Cycles, Key};

/// One microcode operation of the walk engine (Fig. 9's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOp {
    /// Issue the DRAM refill for the current cursor and *yield* until it
    /// arrives (the `Wait` state).
    FetchNode,
    /// Search the fetched node's sorted keys for the walk key (the
    /// `Search` state; parallel `≤` comparators + find-first-set).
    SearchNode,
    /// If the search selected a child, update the cursor and jump back to
    /// `FetchNode`; otherwise fall through (the key resolved at a leaf).
    BranchChild {
        /// Program-counter target of the fetch state.
        fetch_pc: usize,
    },
    /// Emit the leaf outcome and terminate the walk.
    EmitLeaf,
}

/// The compiled walk program: Fig. 9's microcode table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkProgramCode {
    ops: Vec<WalkOp>,
}

/// Compiles the canonical root-to-leaf walk loop.
pub fn compile_walk() -> WalkProgramCode {
    WalkProgramCode {
        ops: vec![
            WalkOp::FetchNode,
            WalkOp::SearchNode,
            WalkOp::BranchChild { fetch_pc: 0 },
            WalkOp::EmitLeaf,
        ],
    }
}

impl WalkProgramCode {
    /// The instruction at `pc`.
    pub fn op(&self, pc: usize) -> WalkOp {
        self.ops[pc]
    }

    /// Number of microcode slots.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the table is empty (never, post-compile).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Interpreter state for one in-flight walk.
#[derive(Clone)]
pub struct Microwalker<'a> {
    index: &'a dyn WalkIndex,
    code: WalkProgramCode,
    key: Key,
    cursor: NodeId,
    pc: usize,
    pending: Option<Descend>,
    outcome: Option<Descend>,
    node_search_latency: Cycles,
}

impl std::fmt::Debug for Microwalker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microwalker")
            .field("key", &self.key)
            .field("cursor", &self.cursor)
            .field("pc", &self.pc)
            .field("outcome", &self.outcome)
            .finish_non_exhaustive()
    }
}

impl<'a> Microwalker<'a> {
    /// Starts a walk for `key` from `start` (the root, or an IX-cache
    /// hit's child for a short-circuited walk).
    pub fn new(
        index: &'a dyn WalkIndex,
        key: Key,
        start: NodeId,
        node_search_latency: Cycles,
    ) -> Self {
        Microwalker {
            index,
            code: compile_walk(),
            key,
            cursor: start,
            pc: 0,
            pending: None,
            outcome: None,
            node_search_latency,
        }
    }

    /// Executes microcode until the next *timed* step (a yield point) or
    /// termination. Returns `None` once the walk has emitted its leaf.
    pub fn next_step(&mut self) -> Option<WalkStep> {
        loop {
            if self.outcome.is_some() {
                return None;
            }
            match self.code.op(self.pc) {
                WalkOp::FetchNode => {
                    let (addr, bytes) = self.index.access_for(self.cursor, self.key);
                    self.pc += 1;
                    return Some(WalkStep::Dram { addr, bytes });
                }
                WalkOp::SearchNode => {
                    self.pending = Some(self.index.descend(self.cursor, self.key));
                    self.pc += 1;
                    return Some(WalkStep::Busy {
                        cycles: self.node_search_latency,
                    });
                }
                WalkOp::BranchChild { fetch_pc } => {
                    match self.pending.take().expect("search precedes branch") {
                        Descend::Child(c) => {
                            self.cursor = c;
                            self.pc = fetch_pc;
                        }
                        leaf @ Descend::Leaf { .. } => {
                            self.pending = Some(leaf);
                            self.pc += 1;
                        }
                    }
                }
                WalkOp::EmitLeaf => {
                    self.outcome = self.pending.take();
                    return None;
                }
            }
        }
    }

    /// The terminal leaf outcome (available after `next_step` returns
    /// `None`).
    pub fn outcome(&self) -> Option<&Descend> {
        self.outcome.as_ref()
    }

    /// The node currently under the cursor.
    pub fn cursor(&self) -> NodeId {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_index::bptree::BPlusTree;
    use metal_sim::types::Addr;

    fn tree() -> BPlusTree {
        let keys: Vec<Key> = (0..1000).map(|i| i * 2).collect();
        BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16)
    }

    /// The interpreter's step stream matches the direct walk loop: one
    /// Dram + one Busy per visited node, same addresses, same outcome.
    #[test]
    fn microwalker_equivalent_to_direct_walk() {
        let t = tree();
        for key in [0u64, 2, 500, 999, 1998, 1999] {
            // Direct loop (what the planner does).
            let mut direct_addrs = Vec::new();
            let mut id = t.root();
            let direct_outcome = loop {
                let (a, _) = t.access_for(id, key);
                direct_addrs.push(a);
                match t.descend(id, key) {
                    Descend::Child(c) => id = c,
                    leaf @ Descend::Leaf { .. } => break leaf,
                }
            };

            // Microcode interpreter.
            let mut w = Microwalker::new(&t, key, t.root(), Cycles::new(2));
            let mut micro_addrs = Vec::new();
            let mut busies = 0;
            while let Some(step) = w.next_step() {
                match step {
                    WalkStep::Dram { addr, .. } => micro_addrs.push(addr),
                    WalkStep::Busy { .. } => busies += 1,
                    other => panic!("unexpected step {other:?}"),
                }
            }
            assert_eq!(micro_addrs, direct_addrs, "key {key}: same fetch stream");
            assert_eq!(busies, micro_addrs.len(), "one search per fetch");
            assert_eq!(w.outcome(), Some(&direct_outcome), "same leaf outcome");
        }
    }

    #[test]
    fn short_circuited_walk_starts_below_the_root() {
        let t = tree();
        let key = 500u64;
        // Find the level-1 ancestor via a partial walk.
        let mut id = t.root();
        let l1 = loop {
            let info = t.node(id);
            if info.level == 1 {
                break id;
            }
            match t.descend(id, key) {
                Descend::Child(c) => id = c,
                Descend::Leaf { .. } => unreachable!("level 1 exists"),
            }
        };
        // Restarting at the IX-hit child walks exactly two nodes (L1, L0).
        let mut w = Microwalker::new(&t, key, l1, Cycles::new(2));
        let mut fetches = 0;
        while let Some(step) = w.next_step() {
            if matches!(step, WalkStep::Dram { .. }) {
                fetches += 1;
            }
        }
        assert_eq!(fetches, 2);
        assert!(matches!(
            w.outcome(),
            Some(Descend::Leaf { found: true, .. })
        ));
    }

    #[test]
    fn compiled_program_is_the_four_state_table() {
        let p = compile_walk();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.op(0), WalkOp::FetchNode);
        assert_eq!(p.op(1), WalkOp::SearchNode);
        assert_eq!(p.op(2), WalkOp::BranchChild { fetch_pc: 0 });
        assert_eq!(p.op(3), WalkOp::EmitLeaf);
    }

    #[test]
    fn walk_terminates_on_missing_keys() {
        let t = tree();
        let mut w = Microwalker::new(&t, 1001, t.root(), Cycles::new(2));
        let mut steps = 0;
        while w.next_step().is_some() {
            steps += 1;
            assert!(steps < 100, "walk must terminate");
        }
        assert!(matches!(
            w.outcome(),
            Some(Descend::Leaf { found: false, .. })
        ));
    }
}
