//! Redis-style sorted sets (§4.4).
//!
//! A hybrid hash/skip-list index: records are mapped to buckets by their
//! *score*, and each bucket is an ordered [`crate::skiplist::SkipList`].
//! Following the paper's order-preserving-hash deployment, the bucket of a
//! score is its high bits (`score >> shift`), so bucket key ranges are
//! disjoint and skip-node range tags remain valid IX-cache tags across the
//! whole set.
//!
//! Two deployments from Table 2:
//!
//! - **Sets** (deep): few buckets → long skip lists (many levels to skip).
//! - **Sets-S** (shallow): ~10³× more buckets → short lists, mimicking a
//!   low-associativity hash table where caching buys little reach.

use crate::arena::{Arena, NodeId};
use crate::skiplist::SkipList;
use crate::walk::{Descend, NodeInfo, WalkIndex};
use metal_sim::types::{Addr, Key};

/// Configuration of a sorted set.
#[derive(Debug, Clone, Copy)]
pub struct SortedSetConfig {
    /// Number of score buckets (power of two).
    pub n_buckets: usize,
    /// Skip-list promotion factor within each bucket.
    pub branching: usize,
    /// Exclusive upper bound of the score space.
    pub score_space: Key,
}

impl SortedSetConfig {
    /// Deep deployment: long per-bucket lists (the paper's "Sets").
    pub fn deep(score_space: Key) -> Self {
        SortedSetConfig {
            n_buckets: 16,
            branching: 4,
            score_space,
        }
    }

    /// Shallow deployment: ~10³× more buckets ("Sets-S").
    pub fn shallow(score_space: Key) -> Self {
        SortedSetConfig {
            n_buckets: 16 * 1024,
            branching: 4,
            score_space,
        }
    }
}

/// A sorted set: score-bucketed skip lists behind a bucket directory.
#[derive(Debug, Clone)]
pub struct SortedSet {
    buckets: Vec<Option<SkipList>>,
    /// NodeId offset of each bucket's towers in the composite id space.
    offsets: Vec<NodeId>,
    dir_addr: Addr,
    dir_bytes: u64,
    shift: u32,
    cfg: SortedSetConfig,
    n_keys: u64,
    depth: u8,
    total_blocks: u64,
    node_count: usize,
    lo: Key,
    hi: Key,
}

impl SortedSet {
    /// Builds a sorted set over sorted, strictly increasing scores
    /// (all ≥ 1 and < `cfg.score_space`).
    ///
    /// # Panics
    ///
    /// Panics if scores are empty/unsorted/out of range, or if
    /// `cfg.n_buckets` is not a power of two.
    pub fn build(scores: &[Key], cfg: SortedSetConfig, base: Addr) -> Self {
        assert!(!scores.is_empty(), "cannot build an empty sorted set");
        assert!(
            cfg.n_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        assert!(
            scores.windows(2).all(|w| w[0] < w[1]),
            "scores must be strictly sorted"
        );
        assert!(scores[0] >= 1, "score 0 is reserved");
        assert!(
            *scores.last().expect("non-empty") < cfg.score_space,
            "scores must be below the score space bound"
        );

        // Order-preserving bucketing: bucket = score >> shift.
        let space_bits = 64 - (cfg.score_space - 1).leading_zeros();
        let bucket_bits = cfg.n_buckets.trailing_zeros();
        let shift = space_bits.saturating_sub(bucket_bits);

        // Bucket directory occupies one pointer per bucket.
        let mut dir_arena = Arena::new(base);
        let dir_bytes = cfg.n_buckets as u64 * 8;
        let dir_slot = dir_arena.alloc(dir_bytes);
        let dir_addr = dir_arena.addr(dir_slot);
        let mut next_base = dir_arena.end();

        let mut buckets: Vec<Option<SkipList>> = Vec::with_capacity(cfg.n_buckets);
        let mut offsets: Vec<NodeId> = Vec::with_capacity(cfg.n_buckets);
        let mut next_offset: NodeId = 1; // 0 is the directory
        let mut total_blocks = dir_arena.total_blocks();
        let mut node_count = 1usize;
        let mut max_height = 0u8;

        let mut i = 0usize;
        for b in 0..cfg.n_buckets as u64 {
            let hi_bound = (b + 1) << shift;
            let start = i;
            while i < scores.len() && scores[i] < hi_bound {
                i += 1;
            }
            offsets.push(next_offset);
            if start == i {
                buckets.push(None);
            } else {
                let sl = SkipList::build(&scores[start..i], cfg.branching, next_base);
                next_base = Addr::new(next_base.get() + sl.total_blocks() * 64);
                next_offset += sl.node_count() as NodeId;
                total_blocks += sl.total_blocks();
                node_count += sl.node_count();
                max_height = max_height.max(sl.height());
                buckets.push(Some(sl));
            }
        }

        SortedSet {
            buckets,
            offsets,
            dir_addr,
            dir_bytes,
            shift,
            cfg,
            n_keys: scores.len() as u64,
            depth: max_height + 1,
            total_blocks,
            node_count,
            lo: scores[0],
            hi: *scores.last().expect("non-empty"),
        }
    }

    /// Number of scores stored.
    pub fn len(&self) -> u64 {
        self.n_keys
    }

    /// Whether the set stores no scores (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.n_keys == 0
    }

    /// The bucket a score maps to.
    pub fn bucket_of(&self, score: Key) -> usize {
        ((score >> self.shift) as usize).min(self.cfg.n_buckets - 1)
    }

    /// Number of non-empty buckets.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.is_some()).count()
    }

    fn bucket_and_local(&self, id: NodeId) -> (usize, NodeId) {
        debug_assert!(id >= 1);
        // offsets is sorted; find the bucket whose offset range contains id.
        let b = match self.offsets.binary_search(&id) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        };
        (b, id - self.offsets[b])
    }

    fn bucket_range(&self, b: usize) -> (Key, Key) {
        let lo = (b as u64) << self.shift;
        let hi = (((b as u64) + 1) << self.shift).saturating_sub(1);
        (lo.max(1), hi)
    }
}

impl WalkIndex for SortedSet {
    fn root(&self) -> NodeId {
        0
    }

    fn node(&self, id: NodeId) -> NodeInfo {
        if id == 0 {
            return NodeInfo {
                addr: self.dir_addr,
                bytes: self.dir_bytes,
                level: self.depth - 1,
                lo: self.lo,
                hi: self.hi,
                keys: self.cfg.n_buckets as u16,
            };
        }
        let (b, local) = self.bucket_and_local(id);
        let sl = self.buckets[b]
            .as_ref()
            .expect("ids only exist for non-empty buckets");
        let mut info = sl.node(local);
        if local == 0 {
            // Head sentinel: clamp its range to the bucket, not [0, max].
            let (blo, bhi) = self.bucket_range(b);
            info.lo = blo;
            info.hi = bhi.min(self.hi);
        }
        info
    }

    fn descend(&self, id: NodeId, key: Key) -> Descend {
        if id == 0 {
            let b = self.bucket_of(key);
            return match &self.buckets[b] {
                Some(_) => Descend::Child(self.offsets[b]),
                None => Descend::Leaf {
                    found: false,
                    value_addr: self.dir_addr,
                    value_bytes: 0,
                },
            };
        }
        let (b, local) = self.bucket_and_local(id);
        let sl = self.buckets[b]
            .as_ref()
            .expect("ids only exist for non-empty buckets");
        match sl.descend(local, key) {
            Descend::Child(c) => Descend::Child(self.offsets[b] + c),
            leaf @ Descend::Leaf { .. } => leaf,
        }
    }

    fn depth(&self) -> u8 {
        self.depth
    }

    fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn next_leaf(&self, leaf: NodeId) -> Option<NodeId> {
        if leaf == 0 {
            return None;
        }
        let (b, local) = self.bucket_and_local(leaf);
        let sl = self.buckets[b].as_ref()?;
        sl.next_leaf(local).map(|n| self.offsets[b] + n)
    }

    fn access_for(&self, id: NodeId, key: Key) -> (Addr, u64) {
        if id == 0 {
            // Directory lookup: fetch only the bucket slot's block.
            let slot = self.dir_addr.get() + self.bucket_of(key) as u64 * 8;
            return (Addr::new(slot / 64 * 64), 64.min(self.dir_bytes));
        }
        let info = self.node(id);
        (info.addr, info.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(n: u64) -> Vec<Key> {
        (1..=n).map(|i| i * 7).collect()
    }

    #[test]
    fn finds_all_scores_deep() {
        let ss = SortedSet::build(&scores(2000), SortedSetConfig::deep(1 << 16), Addr::new(0));
        for &s in &scores(2000) {
            assert!(ss.contains(s), "score {s} must be found");
        }
        assert!(!ss.contains(6));
        assert!(!ss.contains(8));
        assert!(!ss.contains(15_000));
    }

    #[test]
    fn finds_all_scores_shallow() {
        let cfg = SortedSetConfig {
            n_buckets: 256,
            branching: 4,
            score_space: 1 << 16,
        };
        let ss = SortedSet::build(&scores(2000), cfg, Addr::new(0));
        for &s in &scores(2000) {
            assert!(ss.contains(s));
        }
    }

    #[test]
    fn deep_has_fewer_buckets_more_levels() {
        let deep = SortedSet::build(&scores(5000), SortedSetConfig::deep(1 << 16), Addr::new(0));
        let shallow = SortedSet::build(
            &scores(5000),
            SortedSetConfig {
                n_buckets: 4096,
                branching: 4,
                score_space: 1 << 16,
            },
            Addr::new(0),
        );
        assert!(deep.depth() > shallow.depth());
    }

    #[test]
    fn bucketing_is_order_preserving() {
        let ss = SortedSet::build(&scores(1000), SortedSetConfig::deep(1 << 13), Addr::new(0));
        let mut last = 0;
        for s in [10u64, 100, 1000, 5000, 6999] {
            let b = ss.bucket_of(s);
            assert!(b >= last, "bucket index must not decrease with score");
            last = b;
        }
    }

    #[test]
    fn node_ranges_disjoint_across_buckets() {
        let ss = SortedSet::build(&scores(1000), SortedSetConfig::deep(1 << 13), Addr::new(0));
        // The head tower of each non-empty bucket covers only its bucket.
        for id in 1..ss.node_count() as NodeId {
            let info = ss.node(id);
            let blo = ss.bucket_of(info.lo.max(1));
            let bhi = ss.bucket_of(info.hi);
            assert_eq!(blo, bhi, "node {id} range straddles buckets");
        }
    }

    #[test]
    fn directory_is_the_root() {
        let ss = SortedSet::build(&scores(100), SortedSetConfig::deep(1 << 10), Addr::new(0));
        let root = ss.node(ss.root());
        assert_eq!(root.level, ss.depth() - 1);
        assert!(root.covers(7));
        assert!(root.covers(700));
    }

    #[test]
    fn probe_in_empty_bucket_misses_cheaply() {
        // Scores clustered low: high buckets are empty.
        let ss = SortedSet::build(
            &[1, 2, 3],
            SortedSetConfig {
                n_buckets: 16,
                branching: 4,
                score_space: 1 << 16,
            },
            Addr::new(0),
        );
        let mut touched = 0;
        let out = ss.walk(60_000, |_, _| touched += 1);
        assert!(matches!(out, Descend::Leaf { found: false, .. }));
        assert_eq!(touched, 1, "only the directory is touched");
    }

    #[test]
    fn walk_depth_is_bounded() {
        let ss = SortedSet::build(&scores(5000), SortedSetConfig::deep(1 << 16), Addr::new(0));
        let mut n = 0;
        ss.walk(amid(&scores(5000)), |_, _| n += 1);
        assert!(n as u64 <= 3 * ss.depth() as u64 + 8);
    }

    fn amid(v: &[Key]) -> Key {
        v[v.len() / 2]
    }

    #[test]
    fn occupied_buckets_counted() {
        let ss = SortedSet::build(
            &[1, 2, 3],
            SortedSetConfig {
                n_buckets: 16,
                branching: 4,
                score_space: 1 << 16,
            },
            Addr::new(0),
        );
        assert_eq!(ss.occupied_buckets(), 1);
    }

    #[test]
    fn validation_hops_stay_within_bucket() {
        let ss = SortedSet::build(&scores(1000), SortedSetConfig::deep(1 << 13), Addr::new(0));
        // Walk to a score, then take one validation hop; it must stay in
        // the same bucket and carry the next score.
        let target = scores(1000)[500];
        let mut last = ss.root();
        ss.walk(target, |id, _| last = id);
        if let Some(next) = ss.next_leaf(last) {
            let info = ss.node(next);
            assert!(info.lo > target);
            assert_eq!(ss.bucket_of(info.lo), ss.bucket_of(target));
        }
        // The directory has no bottom lane.
        assert_eq!(ss.next_leaf(ss.root()), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_buckets() {
        let _ = SortedSet::build(
            &[1, 2],
            SortedSetConfig {
                n_buckets: 10,
                branching: 4,
                score_space: 1 << 8,
            },
            Addr::new(0),
        );
    }
}
