//! Two-dimensional R-tree as two coordinate B+trees (§4.3).
//!
//! The paper implements its spatial index exactly this way: "each of the
//! coordinates are indexed in a BTree with the leaf values in the x-tree
//! serving as keys to the y-tree". A quadrilateral query walks the x-tree
//! for an x coordinate, reads the correlated y keys from the leaf record,
//! then walks the y-tree for each of them.
//!
//! The x→y correlation is what produces the *branch* reuse pattern: queries
//! whose x coordinates cluster also cluster their y walks, so sub-branches
//! of the y-tree around the cluster median see heavy reuse.

use crate::bptree::BPlusTree;
use crate::walk::WalkIndex;
use metal_sim::types::{Addr, Key};

/// A 2-D spatial index: an x-B+tree whose leaves key a y-B+tree.
#[derive(Debug, Clone)]
pub struct RTree2D {
    x_tree: BPlusTree,
    y_tree: BPlusTree,
    /// Number of correlated y keys per x hit (quadrilateral corners).
    y_keys_per_x: usize,
    y_count: u64,
}

impl RTree2D {
    /// Builds the spatial index over sorted `x_keys` and `y_keys`.
    /// Each x key correlates with `y_keys_per_x` nearby y keys (the
    /// quadrilateral's candidate corners). Table 2 uses a 10 M-key x-tree
    /// (degree 5, depth 10) and a 300 K-key y-tree (degree 3, depth 6).
    ///
    /// # Panics
    ///
    /// Panics if either key set is empty/unsorted or `y_keys_per_x == 0`.
    pub fn build(
        x_keys: &[Key],
        y_keys: &[Key],
        x_max_keys: usize,
        y_max_keys: usize,
        y_keys_per_x: usize,
        base: Addr,
    ) -> Self {
        assert!(y_keys_per_x > 0, "need at least one correlated y key");
        let x_tree = BPlusTree::bulk_load(x_keys, x_max_keys, base, 8 * y_keys_per_x as u64);
        let y_base =
            Addr::new(x_tree.data_base().get() + x_keys.len() as u64 * x_tree.record_bytes() + 64);
        let y_tree = BPlusTree::bulk_load(y_keys, y_max_keys, y_base, 16);
        RTree2D {
            x_tree,
            y_tree,
            y_keys_per_x,
            y_count: y_keys.len() as u64,
        }
    }

    /// The x-coordinate tree.
    pub fn x_tree(&self) -> &BPlusTree {
        &self.x_tree
    }

    /// The y-coordinate tree.
    pub fn y_tree(&self) -> &BPlusTree {
        &self.y_tree
    }

    /// Number of correlated y keys per x leaf record.
    pub fn y_keys_per_x(&self) -> usize {
        self.y_keys_per_x
    }

    /// The y keys correlated with `x` (deterministic spatial correlation:
    /// a cluster of y ranks around a hash-spread position of `x`).
    ///
    /// The correlation is stable so repeated queries for nearby x values
    /// produce overlapping y clusters — the behaviour the branch pattern
    /// exploits.
    pub fn correlated_y_keys(&self, x: Key) -> Vec<Key> {
        // Nearby x values land in nearby y neighborhoods: scale the x key
        // into y-rank space, then take a small window.
        let x_root = self.x_tree.node(self.x_tree.root());
        let span = (x_root.hi - x_root.lo).max(1);
        let pos =
            ((x.saturating_sub(x_root.lo)) as u128 * self.y_count as u128 / span as u128) as u64;
        let start = pos.min(self.y_count.saturating_sub(self.y_keys_per_x as u64));
        (0..self.y_keys_per_x as u64)
            .map(|i| self.y_rank_to_key((start + i).min(self.y_count - 1)))
            .collect()
    }

    /// Total footprint (both trees) in 64 B blocks.
    pub fn total_blocks(&self) -> u64 {
        self.x_tree.total_blocks() + self.y_tree.total_blocks()
    }

    fn y_rank_to_key(&self, rank: u64) -> Key {
        // Walk the y-tree leaves is overkill here; y keys are whatever the
        // builder supplied, so reconstruct by leaf-chain indexing.
        // For efficiency, keys are recovered arithmetically when the y key
        // set is an affine sequence; otherwise fall back to leaf traversal.
        let root = self.y_tree.node(self.y_tree.root());
        let lo = root.lo;
        let hi = root.hi;
        if self.y_count <= 1 {
            return lo;
        }
        // Approximate rank → key assuming near-uniform spacing; then snap
        // to the closest real key with a tree probe of the leaf.
        let approx = lo + (hi - lo) * rank / (self.y_count - 1);
        let leaf = self.y_tree.leaf_for(approx);
        let keys = self.y_tree.leaf_keys(leaf);
        *keys
            .iter()
            .min_by_key(|&&k| k.abs_diff(approx))
            .expect("leaves are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_small() -> RTree2D {
        let x: Vec<Key> = (0..10_000).collect();
        let y: Vec<Key> = (0..300).map(|i| i * 5).collect();
        RTree2D::build(&x, &y, 4, 8, 4, Addr::new(0))
    }

    #[test]
    fn both_trees_walkable() {
        let rt = build_small();
        assert!(rt.x_tree().contains(5000));
        assert!(rt.y_tree().contains(500));
        assert!(!rt.y_tree().contains(501));
    }

    #[test]
    fn correlated_y_keys_exist_in_y_tree() {
        let rt = build_small();
        for x in [0u64, 17, 999, 5000, 9999] {
            for y in rt.correlated_y_keys(x) {
                assert!(rt.y_tree().contains(y), "correlated key {y} must exist");
            }
        }
    }

    #[test]
    fn nearby_x_share_y_clusters() {
        let rt = build_small();
        let a = rt.correlated_y_keys(5000);
        let b = rt.correlated_y_keys(5001);
        let overlap = a.iter().filter(|k| b.contains(k)).count();
        assert!(
            overlap >= a.len() / 2,
            "adjacent x queries should reuse most y keys ({overlap}/{})",
            a.len()
        );
    }

    #[test]
    fn distant_x_use_different_clusters() {
        let rt = build_small();
        let a = rt.correlated_y_keys(100);
        let b = rt.correlated_y_keys(9000);
        let overlap = a.iter().filter(|k| b.contains(k)).count();
        assert_eq!(overlap, 0, "far-apart x queries should not share y keys");
    }

    #[test]
    fn depth_asymmetry_like_paper() {
        // Table 2: x-tree deeper than y-tree.
        let rt = build_small();
        assert!(rt.x_tree().depth() > rt.y_tree().depth());
    }

    #[test]
    fn footprint_sums_trees() {
        let rt = build_small();
        assert_eq!(
            rt.total_blocks(),
            rt.x_tree().total_blocks() + rt.y_tree().total_blocks()
        );
    }
}
