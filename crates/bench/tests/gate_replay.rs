//! Replays recorded noisy `BENCH_ci.json` pairs through the regression
//! gate.
//!
//! The fixtures under `tests/fixtures/` are baseline/fresh pairs from
//! ci-scale runs on a loaded single-core runner where the PR-5 gate
//! (bare >20% ratio on single-shot timings) reported a regression with
//! no code change between the runs:
//!
//! - pair 1: a scheduler hiccup during the probe microbench pushed the
//!   ~30 ns miss path to ~38 ns (+28%) and dented fa-opt's throughput
//!   by ~50 k walks/s (ratio 1.23);
//! - pair 2: preemption during the fig18 sweep added 0.29 s (+35%),
//!   with smaller jitter on the hit path (+24%) and metal-ix
//!   throughput (ratio 1.22).
//!
//! The noise-floor gate must pass both pairs (no false positive) while
//! still flagging a genuine slowdown scaled past the floors.

use metal_bench::gate::{compare, validate};
use metal_obs::Json;

/// The PR-5 gate's bare ratio threshold, kept here as the historical
/// reference the fixtures must still trip (proving they reproduce the
/// old false positive, whatever the current `GATE_RATIO` is).
const PR5_GATE_RATIO: f64 = 1.2;

fn fixture(name: &str) -> Json {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("{path}: bad JSON: {e:?}"))
}

fn replay(pair: u32) -> (Json, Json) {
    let base = fixture(&format!("noisy_base_{pair}.json"));
    let new = fixture(&format!("noisy_new_{pair}.json"));
    validate(&base).expect("baseline fixture must satisfy the schema");
    validate(&new).expect("fresh fixture must satisfy the schema");
    (base, new)
}

#[test]
fn recorded_noisy_pairs_do_not_false_positive() {
    for pair in [1, 2] {
        let (base, new) = replay(pair);
        let report = compare(&base, &new);
        let flagged: Vec<String> = report
            .diffs
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.describe())
            .collect();
        assert!(
            flagged.is_empty(),
            "pair {pair}: noise flagged as regression: {flagged:?}"
        );
        // The fixtures must actually exercise the gate: at least one
        // metric is past the PR-5 bare >20% ratio, i.e. the old gate
        // would have failed this pair.
        assert!(
            report.diffs.iter().any(|d| d.ratio > PR5_GATE_RATIO),
            "pair {pair}: fixture no longer reproduces the old gate's false positive"
        );
    }
}

#[test]
fn scaled_slowdown_on_the_same_fixtures_still_gates() {
    let (base, _) = replay(1);
    // The same run shapes with a real regression: every latency
    // tripled, throughput cut to a third, sweep tripled — far past
    // both the ratio and each class's absolute floor.
    let slow = fixture("noisy_base_1.json");
    let slow = match slow {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    let v = match (k.as_str(), v) {
                        ("probe_ns", Json::Obj(ps)) => Json::Obj(
                            ps.into_iter()
                                .map(|(pk, pv)| {
                                    let x = pv.as_f64().unwrap();
                                    (pk, Json::Num(x * 3.0))
                                })
                                .collect(),
                        ),
                        ("walks_per_sec", Json::Obj(ws)) => Json::Obj(
                            ws.into_iter()
                                .map(|(wk, wv)| {
                                    let x = wv.as_f64().unwrap();
                                    (wk, Json::Num(x / 3.0))
                                })
                                .collect(),
                        ),
                        ("fig18_wall_clock_s", v) => Json::Num(v.as_f64().unwrap() * 3.0),
                        (_, v) => v,
                    };
                    (k, v)
                })
                .collect(),
        ),
        other => other,
    };
    validate(&slow).expect("scaled fixture must stay schema-valid");
    let report = compare(&base, &slow);
    assert!(report.regressed(), "a 2-3x slowdown must still gate");
    // Every metric class participates, so the floors did not blind the
    // gate to any dimension.
    for prefix in ["probe_ns.", "walks_per_sec.", "fig18_wall_clock_s"] {
        assert!(
            report
                .diffs
                .iter()
                .any(|d| d.name.starts_with(prefix) && d.regressed),
            "no regression detected in class {prefix}"
        );
    }
}
