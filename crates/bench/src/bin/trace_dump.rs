//! `trace-dump` — inspector for `--trace-out` JSONL event traces.
//!
//! Reads a trace produced by any figure binary and prints:
//!
//! - event counts by kind,
//! - the top-N hottest IX-cache sets by probe count,
//! - the short-circuit depth distribution of non-scan probe hits,
//! - eviction and admission reason counters,
//! - the tuner decision timeline.
//!
//! With `--check-hits <manifest.json>` it additionally cross-checks the
//! per-level non-scan hit counts reconstructed from the trace against the
//! `hit_levels` statistics recorded in the run manifest — the two are
//! independent paths through the simulator and must agree exactly. When
//! the manifest carries aggregated event metrics (`--metrics-out`), the
//! admission/bypass/eviction reason counters re-derived from the trace
//! are diffed against them too.
//!
//! With `--timeline <cycles:N|walks:M>` the dump ends with a per-epoch
//! table per design — walks, probes, hit rate, misses, fills, evictions,
//! regretted evictions and the cycle-attribution shares (stall%,
//! compute%, queue%) per window — rebuilt through the same windowed
//! [`metal_obs::StreamAnalyzer`] the in-process path uses, so the table
//! matches a `--series-out` document exactly.
//!
//! With `--breakdown` it prints the per-design cycle-accounting table
//! (IX-probe / compute / queue / exposed-stall / MLP-hidden cycles and
//! shares) folded from the trace's `walk_breakdown` events by the same
//! reduction that writes `ANALYSIS.json`'s `breakdown` section.
//!
//! The trace is read line by line through [`metal_obs::JsonlReader`] —
//! multi-gigabyte traces dump in constant memory.
//!
//! Exit codes follow the harness-wide table in PERFORMANCE.md: 0 ok,
//! 1 cross-check mismatch, 2 usage/I-O error.
//!
//! Run: `cargo run -p metal-bench --bin trace_dump -- trace.jsonl
//!       [--top N] [--check-hits manifest.json] [--timeline walks:M]`

use metal_bench::exit;
use metal_obs::breakdown::COMPONENTS;
use metal_obs::{Json, JsonlReader, StreamAnalyzer, TraceAnalysis};
use metal_sim::epoch::EpochSpec;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Everything the summaries need, folded from one pass over the trace.
#[derive(Default)]
struct TraceSummary {
    lines: u64,
    by_kind: BTreeMap<String, u64>,
    /// (index, set) → probe count.
    probes_by_set: BTreeMap<(u64, u64), u64>,
    /// Walk levels skipped per non-scan probe hit.
    short_circuit: BTreeMap<u64, u64>,
    /// (run, design) → level → non-scan hit count.
    hits_by_run: BTreeMap<(String, String), BTreeMap<u64, u64>>,
    evict_reasons: BTreeMap<String, u64>,
    admit_reasons: BTreeMap<String, u64>,
    bypass_reasons: BTreeMap<String, u64>,
    /// Tuner decisions as (at, line description).
    tuner: Vec<(u64, String)>,
}

fn str_field(v: &Json, key: &str) -> String {
    v.get(key)
        .and_then(|f| f.as_str())
        .unwrap_or("?")
        .to_string()
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(|f| f.as_u64()).unwrap_or(0)
}

impl TraceSummary {
    fn observe(&mut self, v: &Json) {
        self.lines += 1;
        let kind = str_field(v, "ev");
        *self.by_kind.entry(kind.clone()).or_insert(0) += 1;
        match kind.as_str() {
            "ix_probe" => {
                let index = u64_field(v, "index");
                let set = u64_field(v, "set");
                *self.probes_by_set.entry((index, set)).or_insert(0) += 1;
                let hit = v.get("hit").and_then(|f| f.as_bool()).unwrap_or(false);
                let scan = v.get("scan").and_then(|f| f.as_bool()).unwrap_or(false);
                if hit && !scan {
                    *self
                        .short_circuit
                        .entry(u64_field(v, "short_circuit"))
                        .or_insert(0) += 1;
                    let run = str_field(v, "run");
                    let design = str_field(v, "design");
                    *self
                        .hits_by_run
                        .entry((run, design))
                        .or_default()
                        .entry(u64_field(v, "level"))
                        .or_insert(0) += 1;
                }
            }
            "evict" => {
                *self
                    .evict_reasons
                    .entry(str_field(v, "reason"))
                    .or_insert(0) += 1;
            }
            "insert" => {
                *self
                    .admit_reasons
                    .entry(str_field(v, "reason"))
                    .or_insert(0) += 1;
            }
            "bypass" => {
                *self
                    .bypass_reasons
                    .entry(str_field(v, "reason"))
                    .or_insert(0) += 1;
            }
            "tuner_decision" => {
                let at = u64_field(v, "at");
                self.tuner.push((
                    at,
                    format!(
                        "at={at} run={} design={} shard={} index={} batch={} {}: {} -> {}",
                        str_field(v, "run"),
                        str_field(v, "design"),
                        u64_field(v, "shard"),
                        u64_field(v, "index"),
                        u64_field(v, "batch"),
                        str_field(v, "param"),
                        u64_field(v, "from"),
                        u64_field(v, "to"),
                    ),
                ));
            }
            _ => {}
        }
    }

    fn print(&self, top: usize) {
        println!("# trace-dump: {} events", self.lines);
        println!();
        println!("## events by kind");
        for (kind, n) in &self.by_kind {
            println!("{kind:>16}  {n}");
        }

        println!();
        println!("## top {top} hottest sets by probe count (index, set)");
        let mut sets: Vec<_> = self.probes_by_set.iter().collect();
        sets.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (&(index, set), n) in sets.into_iter().take(top) {
            let label = if set == u64::from(u32::MAX) {
                "wide".to_string()
            } else {
                set.to_string()
            };
            println!("index {index} set {label:>6}  {n}");
        }

        println!();
        println!("## short-circuit depth distribution (non-scan hits)");
        for (depth, n) in &self.short_circuit {
            println!("skip {depth:>2} levels  {n}");
        }

        println!();
        println!("## admission / eviction reasons");
        for (reason, n) in &self.admit_reasons {
            println!("insert {reason:>14}  {n}");
        }
        for (reason, n) in &self.bypass_reasons {
            println!("bypass {reason:>14}  {n}");
        }
        for (reason, n) in &self.evict_reasons {
            println!("evict  {reason:>14}  {n}");
        }

        println!();
        println!(
            "## tuner decision timeline ({} decisions)",
            self.tuner.len()
        );
        let mut tuner = self.tuner.clone();
        tuner.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        for (_, line) in &tuner {
            println!("{line}");
        }
    }

    /// Cross-checks trace-derived per-level hit counts against the
    /// manifest's `hit_levels`. Returns the number of mismatches.
    fn check_hits(&self, manifest: &Json) -> u64 {
        let mut mismatches = 0;
        let Some(reports) = manifest.get("reports").and_then(|r| r.as_arr()) else {
            eprintln!("check-hits: manifest has no reports array");
            return 1;
        };
        for report in reports {
            let workload = str_field(report, "workload");
            let design = str_field(report, "design");
            let levels: Vec<u64> = report
                .get("stats")
                .and_then(|s| s.get("hit_levels"))
                .and_then(|h| h.as_arr())
                .map(|a| a.iter().filter_map(|x| x.as_u64()).collect())
                .unwrap_or_default();
            let traced = self
                .hits_by_run
                .get(&(workload.clone(), design.clone()))
                .cloned()
                .unwrap_or_default();
            let depth = levels
                .len()
                .max(traced.keys().next_back().map_or(0, |&l| l as usize + 1));
            for level in 0..depth {
                let want = levels.get(level).copied().unwrap_or(0);
                let got = traced.get(&(level as u64)).copied().unwrap_or(0);
                if want != got {
                    mismatches += 1;
                    println!(
                        "MISMATCH {workload}/{design} level {level}: manifest {want}, trace {got}"
                    );
                }
            }
        }
        if mismatches == 0 {
            println!(
                "check-hits: per-level hit counts match for all {} reports",
                reports.len()
            );
        }
        mismatches
    }

    /// Cross-checks the admission/bypass/eviction reason counters
    /// re-derived from the trace against the manifest's aggregated event
    /// metrics. Returns the number of mismatches; skips (returning 0)
    /// when the manifest carries no metrics block.
    fn check_reasons(&self, manifest: &Json) -> u64 {
        let Some(metrics) = manifest.get("metrics") else {
            println!(
                "check-reasons: manifest has no metrics block (run with --metrics-out); skipped"
            );
            return 0;
        };
        let mut mismatches = 0;
        for (key, traced) in [
            ("inserts_by_reason", &self.admit_reasons),
            ("bypasses_by_reason", &self.bypass_reasons),
            ("evictions_by_reason", &self.evict_reasons),
        ] {
            let want: BTreeMap<String, u64> = match metrics.get(key) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                    .collect(),
                _ => BTreeMap::new(),
            };
            let mut reasons: Vec<&String> = want.keys().chain(traced.keys()).collect();
            reasons.sort();
            reasons.dedup();
            for reason in reasons {
                let w = want.get(reason).copied().unwrap_or(0);
                let t = traced.get(reason).copied().unwrap_or(0);
                if w != t {
                    mismatches += 1;
                    println!("MISMATCH {key}/{reason}: manifest {w}, trace {t}");
                }
            }
        }
        if mismatches == 0 {
            println!("check-reasons: admission/bypass/eviction reason counters match the manifest");
        }
        mismatches
    }
}

/// The per-epoch table for every design that appears in the trace.
fn print_timeline(analysis: &TraceAnalysis) {
    for (design, d) in &analysis.designs {
        let Some(series) = &d.series else { continue };
        println!();
        println!(
            "## timeline {design} (epoch width {}, {} windows)",
            series.spec.render(),
            series.windows.len()
        );
        println!(
            "{:>8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "epoch",
            "walks",
            "probes",
            "hit%",
            "misses",
            "fills",
            "evicts",
            "regret",
            "stall%",
            "comp%",
            "queue%"
        );
        for (epoch, w) in &series.windows {
            let hit_pct = if w.probes == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * w.hits_total() as f64 / w.probes as f64)
            };
            // Shares of the window's attributed cycles — the same
            // columns the series JSON and breakdown section conserve.
            let cycles = w.ix_probe_cycles
                + w.compute_cycles
                + w.queue_cycles
                + w.stall_cycles
                + w.hidden_cycles;
            let share = |c: u64| {
                if cycles == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", 100.0 * c as f64 / cycles as f64)
                }
            };
            println!(
                "{epoch:>8} {:>9} {:>9} {hit_pct:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
                w.walks,
                w.probes,
                w.misses,
                w.fills,
                w.evictions_total(),
                w.regretted,
                share(w.stall_cycles),
                share(w.compute_cycles),
                share(w.queue_cycles),
            );
        }
    }
}

/// The per-design cycle-accounting table (`--breakdown`), folded from
/// the trace's `walk_breakdown` events.
fn print_breakdown(analysis: &TraceAnalysis) {
    for (design, d) in &analysis.designs {
        println!();
        let Some(b) = &d.breakdown else {
            println!("## breakdown {design}: trace carries no walk_breakdown events");
            continue;
        };
        println!(
            "## breakdown {design} ({} walks, {} cycles attributed)",
            b.walks, b.latency_total
        );
        println!("{:>10} {:>14} {:>7}", "component", "cycles", "share");
        let total = b.cycles_total().max(1);
        for (name, &cycles) in COMPONENTS.iter().zip(b.cycles.iter()) {
            println!(
                "{name:>10} {cycles:>14} {:>6.1}%",
                100.0 * cycles as f64 / total as f64
            );
        }
        println!("{:>10} {:>14} {:>6.1}%", "total", b.cycles_total(), 100.0);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_dump <trace.jsonl> [--top N] [--check-hits <manifest.json>]\n\
         \x20                 [--timeline <cycles:N|walks:M>] [--breakdown]"
    );
    ExitCode::from(exit::USAGE_IO as u8)
}

fn help() -> ExitCode {
    println!(
        "trace_dump: inspect a --trace-out JSONL event trace\n\
         \n\
         Usage: trace_dump <trace.jsonl> [--top N] [--check-hits <manifest.json>]\n\
         \x20                            [--timeline <cycles:N|walks:M>] [--breakdown]\n\
         \n\
         Prints event counts by kind, the hottest IX-cache sets, the\n\
         short-circuit depth distribution, admission/eviction reason counters\n\
         and the tuner decision timeline. --check-hits cross-checks the trace\n\
         against a --metrics-out run manifest (exits non-zero on mismatch).\n\
         --timeline appends a per-epoch table per design (walks, probes,\n\
         hit rate, misses, fills, evictions, regret and stall/compute/queue\n\
         cycle shares per window). --breakdown appends the per-design cycle-\n\
         accounting table folded from walk_breakdown events.\n\
         \n\
         Traces and manifests are documented in README.md's Telemetry section\n\
         (and its CLI reference table); the tracked performance baseline these\n\
         tools sit alongside is documented in PERFORMANCE.md."
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return help();
    }
    let mut trace_path = None;
    let mut manifest_path = None;
    let mut timeline: Option<EpochSpec> = None;
    let mut breakdown = false;
    let mut top = 10usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            "--check-hits" => match it.next() {
                Some(p) => manifest_path = Some(p.clone()),
                None => return usage(),
            },
            "--timeline" => match it.next().map(|v| EpochSpec::parse(v)) {
                Some(Ok(spec)) => timeline = Some(spec),
                Some(Err(e)) => {
                    eprintln!("trace_dump: --timeline: {e}");
                    return usage();
                }
                None => return usage(),
            },
            "--breakdown" => breakdown = true,
            p if trace_path.is_none() => trace_path = Some(p.to_string()),
            _ => return usage(),
        }
    }
    let Some(trace_path) = trace_path else {
        return usage();
    };

    let mut reader = match JsonlReader::open(&trace_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_dump: cannot open {trace_path}: {e}");
            return ExitCode::from(exit::USAGE_IO as u8);
        }
    };
    let mut summary = TraceSummary::default();
    // --timeline replays each (run, design, shard) stream through a
    // windowed analyzer; merged per design they reproduce exactly the
    // series the in-process --series-out path would have written.
    let mut streams: BTreeMap<(String, String, u64), StreamAnalyzer> = BTreeMap::new();
    loop {
        let v = match reader.next_line() {
            Ok(Some(v)) => v,
            Ok(None) => break,
            Err(e) => {
                eprintln!("trace_dump: {trace_path}: {e}");
                return ExitCode::from(exit::USAGE_IO as u8);
            }
        };
        summary.observe(&v);
        if timeline.is_some() || breakdown {
            let key = (
                str_field(&v, "run"),
                str_field(&v, "design"),
                u64_field(&v, "shard"),
            );
            streams
                .entry(key)
                .or_insert_with(|| StreamAnalyzer::new(1).with_epoch(timeline))
                .observe_json(&v);
        }
    }
    summary.print(top);
    if timeline.is_some() || breakdown {
        let mut analysis = TraceAnalysis::default();
        for ((_, design, _), analyzer) in streams {
            analysis.fold(&design, analyzer.finish());
        }
        if breakdown {
            print_breakdown(&analysis);
        }
        if timeline.is_some() {
            print_timeline(&analysis);
        }
    }

    if let Some(path) = manifest_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_dump: cannot read {path}: {e}");
                return ExitCode::from(exit::USAGE_IO as u8);
            }
        };
        let manifest = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trace_dump: bad manifest JSON: {e}");
                return ExitCode::from(exit::USAGE_IO as u8);
            }
        };
        println!();
        if summary.check_hits(&manifest) + summary.check_reasons(&manifest) > 0 {
            return ExitCode::from(exit::VALIDATION as u8);
        }
    }
    ExitCode::SUCCESS
}
