//! Cross-checks for the `metal-obs` forensic analytics.
//!
//! The forensics (entry ledger, reuse profile, miss taxonomy, regret
//! meter) are *derived* views over the event stream, so they get the
//! same treatment as the simulator itself: independent, obviously
//! correct re-derivations to diff against.
//!
//! - [`naive_regret`] re-derives the eviction-regret verdicts with a
//!   Belady-style forward scan (for every eviction, look into the
//!   actual future for the victim's re-reference vs the incoming
//!   entry's first hit) — `O(evictions × events)`, no windows, no
//!   incremental state. The streaming `RegretMeter` must agree exactly.
//! - [`check_taxonomy_references`] diffs the taxonomy's hand-rolled
//!   fully-associative LRU against [`crate::refcache::RefSetLru`]
//!   (degenerate single-set configuration) access by access, and pins
//!   the Belady bound: the taxonomy's `compulsory + capacity` is the
//!   FA-LRU miss count, which [`OptCache`] (optimal by
//!   construction) can never exceed at equal capacity.

use metal_obs::reuse::{FaLru, MissTaxonomy};
use metal_obs::{LogHist, RegretSummary};
use metal_sim::caches::OptCache;
use metal_sim::obs::Event;
use metal_sim::rng::SplitRng;
use metal_sim::types::BlockAddr;

use crate::refcache::RefSetLru;

/// Belady-style reference for eviction regret: replays the recorded
/// future of each eviction instead of tracking open windows. Verdict
/// rules mirror `metal_obs::RegretMeter`: scanning forward from the
/// eviction, the first probe that hits the incoming entry vindicates it
/// (checked first, so a simultaneous re-reference is not *before* the
/// hit), the first probe landing in the victim's span regrets it, and
/// the incoming entry's own eviction — or end of stream — leaves it
/// unresolved.
pub fn naive_regret(events: &[(u64, Event)]) -> RegretSummary {
    let mut s = RegretSummary {
        evictions: 0,
        regretted: 0,
        vindicated: 0,
        unresolved: 0,
        regret_distance: LogHist::default(),
    };
    for (i, (_, ev)) in events.iter().enumerate() {
        let Event::Evict {
            index,
            lo,
            hi,
            for_entry,
            ..
        } = *ev
        else {
            continue;
        };
        s.evictions += 1;
        let mut probes = 0u64;
        let mut resolved = false;
        for (_, later) in &events[i + 1..] {
            match *later {
                Event::IxProbe {
                    index: pi,
                    key,
                    hit,
                    entry,
                    ..
                } => {
                    probes += 1;
                    if hit && entry == for_entry {
                        s.vindicated += 1;
                        resolved = true;
                        break;
                    }
                    if pi == index && (lo..=hi).contains(&key) {
                        s.regretted += 1;
                        s.regret_distance.observe(probes);
                        resolved = true;
                        break;
                    }
                }
                Event::Evict { entry, .. } if entry == for_entry => {
                    s.unresolved += 1;
                    resolved = true;
                    break;
                }
                _ => {}
            }
        }
        if !resolved {
            s.unresolved += 1;
        }
    }
    s
}

/// Differential + Belady-bound check of the miss-taxonomy references
/// for one seed. Returns the first divergence as an error string.
pub fn check_taxonomy_references(seed: u64) -> Result<(), String> {
    let entries = 64;
    let mut rng = SplitRng::stream(seed, 0x7a11);
    let mut obs_lru = FaLru::new(entries);
    let mut ref_lru = RefSetLru::new(entries, entries);
    let mut taxonomy = MissTaxonomy::new(entries);
    let mut trace = Vec::new();
    for op in 0..4000u64 {
        // Skewed mix: a hot core that mostly hits plus a cold tail that
        // forces capacity evictions.
        let block = if rng.gen_range(0u64..4) == 0 {
            rng.gen_range(0u64..48)
        } else {
            rng.gen_range(0u64..1024)
        };
        let got = obs_lru.access(block);
        let want = ref_lru.access(block);
        if got != want {
            return Err(format!(
                "seed {seed} op {op}: FaLru {got} but RefSetLru {want} for block {block}"
            ));
        }
        taxonomy.observe(block);
        trace.push(BlockAddr::new(block));
    }
    let counts = taxonomy.counts();
    let lru_misses = counts.compulsory + counts.capacity;
    if counts.total() != 4000 {
        return Err(format!(
            "seed {seed}: taxonomy classified {} of 4000 accesses",
            counts.total()
        ));
    }
    let opt = OptCache::new(entries).simulate(&trace);
    if opt.misses > lru_misses {
        return Err(format!(
            "seed {seed}: Belady misses {} exceed FA-LRU misses {lru_misses} — \
             the taxonomy's capacity classification is broken",
            opt.misses
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_core::models::DesignSpec;
    use metal_core::runner::{run_design, ObsConfig, RunConfig, ShardCtx};
    use metal_core::IxConfig;
    use metal_obs::RegretMeter;
    use metal_sim::obs::{shared, EventSink};
    use metal_workloads::{Scale, Workload};
    use std::sync::{Arc, Mutex};

    /// Collects the full `(at, event)` stream across threads.
    struct CollectSink(Arc<Mutex<Vec<(u64, Event)>>>);

    impl EventSink for CollectSink {
        fn emit(&mut self, at: u64, ev: &Event) {
            self.0.lock().unwrap().push((at, *ev));
        }
    }

    /// One seeded METAL run with a deliberately small IX-cache so the
    /// eviction machinery is exercised hard; single logical shard so the
    /// collected stream is totally ordered.
    fn seeded_event_stream() -> Vec<(u64, Event)> {
        let built = Workload::SpMM.build(Scale::ci().with_keys(6_000).with_walks(800));
        let exp = built.experiment();
        let spec = DesignSpec::Metal {
            ix: IxConfig::with_capacity_bytes(4 * 1024),
            descriptors: built.descriptors.clone(),
            tune: true,
            batch_walks: built.batch_walks,
        };
        let events: Arc<Mutex<Vec<(u64, Event)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_events = events.clone();
        let cfg = RunConfig::default()
            .with_lanes(built.tiles)
            .with_shards(1)
            .with_obs(ObsConfig {
                sink_factory: Some(Arc::new(move |_ctx: &ShardCtx| {
                    Some(shared(CollectSink(sink_events.clone())))
                })),
                progress: None,
                stall_cycles: None,
                total_cycles: None,
            });
        run_design(&spec, &exp, &cfg);
        Arc::try_unwrap(events)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_else(|arc| arc.lock().unwrap().clone())
    }

    #[test]
    fn regret_meter_matches_belady_forward_scan() {
        let events = seeded_event_stream();
        let evictions = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::Evict { .. }))
            .count();
        assert!(
            evictions > 50,
            "scenario too tame ({evictions} evictions) to exercise regret"
        );
        let mut meter = RegretMeter::new();
        for (_, ev) in &events {
            match *ev {
                Event::IxProbe {
                    index,
                    key,
                    hit,
                    entry,
                    ..
                } => {
                    meter.probe(index, key, hit, entry);
                }
                Event::Evict {
                    index,
                    lo,
                    hi,
                    entry,
                    for_entry,
                    ..
                } => meter.evict(index, lo, hi, entry, for_entry),
                _ => {}
            }
        }
        let streaming = meter.finish();
        let reference = naive_regret(&events);
        assert!(streaming.is_conserved(), "verdicts must sum to evictions");
        assert_eq!(
            streaming, reference,
            "streaming regret meter diverged from the Belady forward scan"
        );
        assert!(
            streaming.regretted > 0,
            "a thrashing cache must show some regretted evictions"
        );
    }

    #[test]
    fn taxonomy_references_agree_across_seeds() {
        for seed in 0..8 {
            check_taxonomy_references(seed).unwrap();
        }
    }
}
