//! Randomized tests over the design models: generated workloads must
//! preserve walk semantics under every cache organization. Driven by a
//! seeded [`SplitRng`] so every case is reproducible.

use metal_core::descriptor::{Descriptor, LevelDescriptor, NodeDescriptor};
use metal_core::ixcache::IxConfig;
use metal_core::models::{DesignSpec, Experiment};
use metal_core::request::WalkRequest;
use metal_core::runner::{run_design, RunConfig};
use metal_index::bptree::BPlusTree;
use metal_sim::rng::SplitRng;
use metal_sim::types::{Addr, Key};
use std::collections::BTreeSet;

fn sorted_keys(rng: &mut SplitRng, min_len: usize, max_len: usize) -> Vec<Key> {
    let len = rng.gen_range(min_len..max_len);
    let mut set = BTreeSet::new();
    while set.len() < len {
        set.insert(rng.gen_range(1u64..200_000));
    }
    set.into_iter().collect()
}

fn designs(desc: Descriptor) -> Vec<DesignSpec> {
    vec![
        DesignSpec::Stream,
        DesignSpec::Address {
            entries: 64,
            ways: 4,
        },
        DesignSpec::FaOpt { entries: 64 },
        DesignSpec::XCache {
            entries: 64,
            ways: 4,
        },
        DesignSpec::MetalIx {
            ix: IxConfig {
                entries: 64,
                ways: 4,
                key_block_bits: 4,
                wide_fraction: 0.5,
            },
        },
        DesignSpec::Metal {
            ix: IxConfig {
                entries: 64,
                ways: 4,
                key_block_bits: 4,
                wide_fraction: 0.5,
            },
            descriptors: vec![desc],
            tune: true,
            batch_walks: 50,
        },
    ]
}

/// With a deliberately tiny cache and arbitrary descriptors, every design
/// still (a) completes every walk, (b) finds exactly the keys the oracle
/// contains, and (c) never exceeds streaming's DRAM node traffic.
#[test]
fn designs_preserve_semantics() {
    let mut rng = SplitRng::stream(0xD0DE, 0);
    for _ in 0..24 {
        let keys = sorted_keys(&mut rng, 2, 120);
        let n_probes = rng.gen_range(5usize..60);
        let probe_seeds: Vec<u64> = (0..n_probes)
            .map(|_| rng.gen_range(0u64..250_000))
            .collect();
        let band_lo = rng.gen_range(0u64..3) as u8;
        let desc_kind = rng.gen_range(0u64..4) as u8;

        let oracle: BTreeSet<Key> = keys.iter().copied().collect();
        let tree = BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16);
        let requests: Vec<WalkRequest> = probe_seeds
            .iter()
            .map(|&p| WalkRequest::lookup(p))
            .collect();
        let expected_found = probe_seeds.iter().filter(|p| oracle.contains(p)).count() as u64;

        let desc = match desc_kind {
            0 => Descriptor::All,
            1 => Descriptor::None,
            2 => Descriptor::Node(NodeDescriptor::leaves()),
            _ => Descriptor::Level(LevelDescriptor::band(band_lo, band_lo + 2)),
        };

        let exp = Experiment::single(&tree, &requests);
        let cfg = RunConfig::default().with_lanes(4);
        let stream_nodes = run_design(&DesignSpec::Stream, &exp, &cfg)
            .stats
            .dram_node_reads;
        for spec in designs(desc.clone()) {
            let r = run_design(&spec, &exp, &cfg);
            assert_eq!(r.stats.walks, requests.len() as u64);
            assert_eq!(
                r.stats.found_walks, expected_found,
                "design {} changed walk outcomes",
                r.design
            );
            assert!(r.stats.dram_node_reads <= stream_nodes);
            assert!(r.stats.misses <= r.stats.probes);
        }
    }
}

/// The tuner may move descriptor parameters anywhere; runs stay
/// deterministic and bounded.
#[test]
fn tuned_runs_deterministic() {
    let mut rng = SplitRng::stream(0xD0DE, 1);
    for _ in 0..24 {
        let keys = sorted_keys(&mut rng, 2, 100);
        let n_probes = rng.gen_range(10usize..80);
        let tree = BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16);
        let requests: Vec<WalkRequest> = (0..n_probes)
            .map(|i| WalkRequest::lookup(keys[i % keys.len()]))
            .collect();
        let exp = Experiment::single(&tree, &requests);
        let cfg = RunConfig::default().with_lanes(4);
        let spec = DesignSpec::Metal {
            ix: IxConfig::kb64(),
            descriptors: vec![Descriptor::Level(LevelDescriptor::band(1, 3))],
            tune: true,
            batch_walks: 16,
        };
        let a = run_design(&spec, &exp, &cfg);
        let b = run_design(&spec, &exp, &cfg);
        assert_eq!(a.stats.exec_cycles, b.stats.exec_cycles);
        assert_eq!(a.band_history, b.band_history);
    }
}
