//! # metal-sim — memory-system substrate for the METAL reproduction
//!
//! This crate is the stand-in for the paper's gem5-SALAM toolflow: a small,
//! deterministic, event-driven simulator of the memory system that METAL's
//! index walks exercise. It provides:
//!
//! - simulated physical [`Addr`]esses and 64-byte [`BlockAddr`] blocks
//!   ([`types`]),
//! - a banked HBM/DRAM channel model with queueing, bandwidth accounting and
//!   energy ([`dram`]),
//! - the baseline caches the paper compares against: a set-associative LRU
//!   address cache, a fully-associative Belady/OPT address cache, and the
//!   X-Cache-style exact-key leaf cache ([`caches`]),
//! - a multiplexed walker scheduler that runs many in-flight walks and lets
//!   their DRAM refills overlap, modelling memory-level parallelism
//!   ([`engine`]),
//! - counters for hits, misses, working-set size, walk latency and energy
//!   ([`stats`]).
//!
//! Higher crates (`metal-index`, `metal-core`, `metal-dsa`) lower index
//! traversals onto [`engine::WalkProgram`]s; everything in this crate is
//! index-agnostic.
//!
//! ## Example
//!
//! ```
//! use metal_sim::{SimConfig, dram::Dram, types::Addr};
//!
//! let cfg = SimConfig::default();
//! let mut dram = Dram::new(cfg.dram);
//! // Issue an access at cycle 0 and observe its completion time.
//! let done = dram.access(0, Addr::new(0x40), 64);
//! assert!(done >= cfg.dram.latency);
//! ```

#![warn(missing_docs)]

pub mod caches;
pub mod config;
pub mod dram;
pub mod engine;
pub mod epoch;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod types;

pub use config::{DramConfig, EnergyConfig, SimConfig};
pub use engine::{Engine, EngineReport, StepOutcome, WalkProgram, WalkStep};
pub use epoch::{EpochClock, EpochSpec};
pub use obs::{Event, EventSink, NullSink, SharedSink};
pub use rng::SplitRng;
pub use stats::{RunStats, WorkingSet};
pub use types::{Addr, BlockAddr, Cycles, Key, BLOCK_BYTES};
