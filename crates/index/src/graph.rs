//! Adjacency-list index for graph workloads (PageRank-push).
//!
//! Table 2: Aurochs runs PageRank-push over a 10 M-node adjacency list
//! whose index type is `[key, degree]`. Structurally this is the same
//! shape as a sparse tensor — vertex ids indexed in a tree, with a
//! variable-length neighbor list per vertex — so the index is a thin
//! graph-flavored wrapper over [`crate::tensor::SparseTensor`].

use crate::arena::NodeId;
use crate::tensor::SparseTensor;
use crate::walk::{Descend, NodeInfo, WalkIndex};
use metal_sim::types::{Addr, Key};

/// A graph stored as a vertex-id index over adjacency (edge) lists.
#[derive(Debug, Clone)]
pub struct AdjacencyIndex {
    tensor: SparseTensor,
    degrees: Vec<u32>,
}

impl AdjacencyIndex {
    /// Builds an adjacency index from `(vertex_id, out_degree)` pairs
    /// (sorted by vertex id, degree ≥ 1; isolated vertices are omitted,
    /// as they are never walked).
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is empty or unsorted, or any degree is 0.
    pub fn build(vertices: &[(Key, u32)], max_keys: usize, base: Addr) -> Self {
        let n = vertices.len() as u64;
        AdjacencyIndex {
            tensor: SparseTensor::build(n, n, vertices, max_keys, base),
            degrees: vertices.iter().map(|&(_, d)| d).collect(),
        }
    }

    /// Number of (non-isolated) vertices.
    pub fn vertex_count(&self) -> usize {
        self.degrees.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> u64 {
        self.tensor.total_nnz()
    }

    /// Out-degree of the vertex at sorted rank `rank`.
    pub fn degree_of_rank(&self, rank: usize) -> u32 {
        self.degrees[rank]
    }
}

impl WalkIndex for AdjacencyIndex {
    fn root(&self) -> NodeId {
        self.tensor.root()
    }

    fn node(&self, id: NodeId) -> NodeInfo {
        self.tensor.node(id)
    }

    fn descend(&self, id: NodeId, key: Key) -> Descend {
        self.tensor.descend(id, key)
    }

    fn depth(&self) -> u8 {
        self.tensor.depth()
    }

    fn total_blocks(&self) -> u64 {
        self.tensor.total_blocks()
    }

    fn node_count(&self) -> usize {
        self.tensor.node_count()
    }

    fn next_leaf(&self, leaf: NodeId) -> Option<NodeId> {
        self.tensor.next_leaf(leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertices(n: u64) -> Vec<(Key, u32)> {
        (0..n).map(|v| (v, (v % 9 + 1) as u32)).collect()
    }

    #[test]
    fn walks_resolve_edge_lists() {
        let g = AdjacencyIndex::build(&vertices(500), 8, Addr::new(0));
        for &(v, d) in &vertices(500) {
            match g.walk(v, |_, _| {}) {
                Descend::Leaf {
                    found: true,
                    value_bytes,
                    ..
                } => assert_eq!(value_bytes, d as u64 * 12),
                other => panic!("vertex {v} should resolve: {other:?}"),
            }
        }
    }

    #[test]
    fn counts() {
        let vs = vertices(100);
        let g = AdjacencyIndex::build(&vs, 8, Addr::new(0));
        assert_eq!(g.vertex_count(), 100);
        let want: u64 = vs.iter().map(|&(_, d)| d as u64).sum();
        assert_eq!(g.edge_count(), want);
        assert_eq!(g.degree_of_rank(10), vs[10].1);
    }

    #[test]
    fn missing_vertex_not_found() {
        let g = AdjacencyIndex::build(&[(0, 3), (5, 2)], 8, Addr::new(0));
        assert!(!g.contains(3));
        assert!(g.contains(5));
    }
}
