//! Per-entry cache forensics: the entry ledger and the eviction-regret
//! meter.
//!
//! Both consume one (run, design, shard) event stream in order — entry
//! ids are only unique within a stream — and reduce to plain-sum
//! summaries that merge associatively across shards.
//!
//! **Ledger.** Every IX-cache entry id seen in a `fill` opens a ledger
//! record carrying its admission context (the `insert` event that
//! immediately precedes the fills of one admission names the deciding
//! arm and granted lifetime), its pack mode, and accumulates the hits
//! and short-circuited walk levels its probes produce. The record
//! retires on `evict` (folding lifetime and hit counts into the
//! summary) or at end of stream (as a resident entry).
//!
//! **Regret meter.** Every eviction opens a *regret window* asking the
//! counterfactual: was the victim's key span re-probed before the entry
//! it made room for produced its first hit? If yes, the eviction is
//! **regretted** (keeping the victim would have served that probe); if
//! the incoming entry hits first, the eviction is **vindicated**; if
//! neither happens before the incoming entry is itself evicted or the
//! stream ends, it is **unresolved**. A probe that would both vindicate
//! and regret the same window counts as vindicated: the re-reference is
//! not *before* the first hit. Regretted windows record the number of
//! probes between eviction and re-reference in a log₂ histogram.

use crate::reuse::LogHist;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Live per-entry state while the entry is resident.
#[derive(Debug, Clone)]
struct LedgerRec {
    insert_at: u64,
    admit_reason: String,
    pack: String,
    hits: u64,
    short_circuit_saved: u64,
}

/// Associatively mergeable reduction of one stream's ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Entries created (fill events).
    pub filled: u64,
    /// Coalesce events (admissions absorbed into a resident entry).
    pub coalesced: u64,
    /// Entries retired by eviction.
    pub evicted: u64,
    /// Entries killed whole by range invalidation (mutation coherence).
    pub invalidated: u64,
    /// Entries still resident at end of stream.
    pub resident: u64,
    /// Evicted entries that never produced a hit (dead on arrival).
    pub zero_hit_evictions: u64,
    /// Probe hits attributed to ledgered entries.
    pub hits_total: u64,
    /// Walk levels short-circuited by those hits.
    pub short_circuit_saved: u64,
    /// Hits accrued per retired entry (log₂ buckets).
    pub hits_per_entry: LogHist,
    /// Cycles between fill and eviction per evicted entry (log₂).
    pub lifetime_cycles: LogHist,
    /// Entries per admission-reason tag.
    pub entries_by_admit_reason: BTreeMap<String, u64>,
    /// Hits per admission-reason tag.
    pub hits_by_admit_reason: BTreeMap<String, u64>,
    /// Entries per pack mode at retirement (`coalesced` when the entry
    /// absorbed at least one later admission).
    pub entries_by_pack: BTreeMap<String, u64>,
}

impl LedgerSummary {
    /// Folds `other` into `self` (all fields are sums).
    pub fn merge(&mut self, other: &LedgerSummary) {
        self.filled += other.filled;
        self.coalesced += other.coalesced;
        self.evicted += other.evicted;
        self.invalidated += other.invalidated;
        self.resident += other.resident;
        self.zero_hit_evictions += other.zero_hit_evictions;
        self.hits_total += other.hits_total;
        self.short_circuit_saved += other.short_circuit_saved;
        self.hits_per_entry.merge(&other.hits_per_entry);
        self.lifetime_cycles.merge(&other.lifetime_cycles);
        for (k, n) in &other.entries_by_admit_reason {
            *self.entries_by_admit_reason.entry(k.clone()).or_insert(0) += n;
        }
        for (k, n) in &other.hits_by_admit_reason {
            *self.hits_by_admit_reason.entry(k.clone()).or_insert(0) += n;
        }
        for (k, n) in &other.entries_by_pack {
            *self.entries_by_pack.entry(k.clone()).or_insert(0) += n;
        }
    }
}

/// Per-entry ledger over one event stream.
#[derive(Debug, Default)]
pub struct EntryLedger {
    live: HashMap<u64, LedgerRec>,
    /// Admission context from the most recent `insert` event; the fills
    /// of one admission follow their insert immediately in the stream.
    pending_reason: String,
    summary: LedgerSummary,
}

impl EntryLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EntryLedger::default()
    }

    /// Observes an `insert` event (the admission decision ahead of its
    /// fills).
    pub fn insert(&mut self, reason: &str) {
        self.pending_reason = reason.to_string();
    }

    /// Observes a `fill` creating `entry` at cycle `at` with pack mode
    /// `pack`.
    pub fn fill(&mut self, at: u64, entry: u64, pack: &str) {
        self.summary.filled += 1;
        *self
            .summary
            .entries_by_admit_reason
            .entry(self.pending_reason.clone())
            .or_insert(0) += 1;
        self.live.insert(
            entry,
            LedgerRec {
                insert_at: at,
                admit_reason: self.pending_reason.clone(),
                pack: pack.to_string(),
                hits: 0,
                short_circuit_saved: 0,
            },
        );
    }

    /// Observes a `coalesce` absorbing an admission into resident
    /// `entry`.
    pub fn coalesce(&mut self, entry: u64) {
        self.summary.coalesced += 1;
        if let Some(rec) = self.live.get_mut(&entry) {
            rec.pack = "coalesced".to_string();
        }
    }

    /// Observes a probe hit on `entry` that short-circuited
    /// `short_circuit` walk levels.
    pub fn probe_hit(&mut self, entry: u64, short_circuit: u64) {
        self.summary.hits_total += 1;
        self.summary.short_circuit_saved += short_circuit;
        if let Some(rec) = self.live.get_mut(&entry) {
            rec.hits += 1;
            rec.short_circuit_saved += short_circuit;
            *self
                .summary
                .hits_by_admit_reason
                .entry(rec.admit_reason.clone())
                .or_insert(0) += 1;
        }
    }

    fn retire(summary: &mut LedgerSummary, rec: LedgerRec, cause: Retirement) {
        match cause {
            Retirement::Evicted(at) => {
                summary.evicted += 1;
                if rec.hits == 0 {
                    summary.zero_hit_evictions += 1;
                }
                summary
                    .lifetime_cycles
                    .observe(at.saturating_sub(rec.insert_at));
            }
            Retirement::Invalidated(at) => {
                summary.invalidated += 1;
                summary
                    .lifetime_cycles
                    .observe(at.saturating_sub(rec.insert_at));
            }
            Retirement::Resident => summary.resident += 1,
        }
        summary.hits_per_entry.observe(rec.hits);
        *summary.entries_by_pack.entry(rec.pack).or_insert(0) += 1;
    }

    /// Observes the eviction of `entry` at cycle `at`.
    pub fn evict(&mut self, at: u64, entry: u64) {
        if let Some(rec) = self.live.remove(&entry) {
            Self::retire(&mut self.summary, rec, Retirement::Evicted(at));
        }
    }

    /// Observes a range invalidation killing `entry` whole at cycle
    /// `at`. Partial invalidations (the entry survives shrunk) are not
    /// retirements and must not be reported here — conservation is
    /// `filled == evicted + invalidated + resident`.
    pub fn invalidate(&mut self, at: u64, entry: u64) {
        if let Some(rec) = self.live.remove(&entry) {
            Self::retire(&mut self.summary, rec, Retirement::Invalidated(at));
        }
    }

    /// Ends the stream: folds resident entries into the summary and
    /// returns it.
    pub fn finish(mut self) -> LedgerSummary {
        let mut live: Vec<(u64, LedgerRec)> = self.live.drain().collect();
        // Drain order is hash order; sort so the summary is a pure
        // function of the stream.
        live.sort_by_key(|(id, _)| *id);
        for (_, rec) in live {
            Self::retire(&mut self.summary, rec, Retirement::Resident);
        }
        self.summary
    }
}

/// Why a ledger record retired.
#[derive(Debug, Clone, Copy)]
enum Retirement {
    Evicted(u64),
    Invalidated(u64),
    Resident,
}

/// One open regret window (an eviction awaiting its verdict).
#[derive(Debug, Clone)]
struct Window {
    index: u8,
    lo: u64,
    hi: u64,
    for_entry: u64,
    opened_at_probe: u64,
}

/// Associatively mergeable reduction of one stream's regret windows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegretSummary {
    /// Windows opened (= evictions observed).
    pub evictions: u64,
    /// Victim span re-probed before the incoming entry's first hit.
    pub regretted: u64,
    /// Incoming entry hit first.
    pub vindicated: u64,
    /// Neither happened before the incoming entry died or the stream
    /// ended.
    pub unresolved: u64,
    /// Probes between eviction and the regretting re-reference (log₂).
    pub regret_distance: LogHist,
}

impl RegretSummary {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &RegretSummary) {
        self.evictions += other.evictions;
        self.regretted += other.regretted;
        self.vindicated += other.vindicated;
        self.unresolved += other.unresolved;
        self.regret_distance.merge(&other.regret_distance);
    }

    /// Conservation check: every window reached exactly one verdict.
    pub fn is_conserved(&self) -> bool {
        self.evictions == self.regretted + self.vindicated + self.unresolved
    }
}

/// Regret-window verdicts produced by one observed probe. Time-series
/// consumers use this to attribute each resolution to the epoch of the
/// probe that produced it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegretDelta {
    /// Windows this probe closed regretted.
    pub regretted: u64,
    /// Windows this probe closed vindicated.
    pub vindicated: u64,
}

/// Eviction-regret meter over one event stream.
#[derive(Debug, Default)]
pub struct RegretMeter {
    open: Vec<Window>,
    probes: u64,
    summary: RegretSummary,
}

impl RegretMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        RegretMeter::default()
    }

    /// Observes a probe for `key` in `index`; `entry` is the hit entry
    /// id (0 on miss). Returns the verdicts this probe produced.
    pub fn probe(&mut self, index: u8, key: u64, hit: bool, entry: u64) -> RegretDelta {
        self.probes += 1;
        let mut delta = RegretDelta::default();
        if self.open.is_empty() {
            return delta;
        }
        let probes = self.probes;
        let summary = &mut self.summary;
        self.open.retain(|w| {
            // Vindication first: a simultaneous re-reference is not
            // *before* the first hit.
            if hit && entry == w.for_entry {
                summary.vindicated += 1;
                delta.vindicated += 1;
                return false;
            }
            if index == w.index && (w.lo..=w.hi).contains(&key) {
                summary.regretted += 1;
                summary.regret_distance.observe(probes - w.opened_at_probe);
                delta.regretted += 1;
                return false;
            }
            true
        });
        delta
    }

    /// Observes an eviction: closes any window waiting on the evicted
    /// entry (unresolved — it died hitless), then opens a window for
    /// this eviction's victim.
    pub fn evict(&mut self, index: u8, lo: u64, hi: u64, entry: u64, for_entry: u64) {
        let summary = &mut self.summary;
        self.open.retain(|w| {
            if w.for_entry == entry {
                summary.unresolved += 1;
                false
            } else {
                true
            }
        });
        self.summary.evictions += 1;
        self.open.push(Window {
            index,
            lo,
            hi,
            for_entry,
            opened_at_probe: self.probes,
        });
    }

    /// Observes a range invalidation killing `entry`: any window waiting
    /// on it closes unresolved (the entry died to coherence, not to a
    /// verdict). Invalidations open no window of their own — they are
    /// mandatory, so there is no eviction decision to second-guess.
    pub fn invalidate(&mut self, entry: u64) {
        let summary = &mut self.summary;
        self.open.retain(|w| {
            if w.for_entry == entry {
                summary.unresolved += 1;
                false
            } else {
                true
            }
        });
    }

    /// Ends the stream: remaining windows are unresolved.
    pub fn finish(mut self) -> RegretSummary {
        self.summary.unresolved += self.open.len() as u64;
        self.open.clear();
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_attributes_hits_and_lifetimes() {
        let mut l = EntryLedger::new();
        l.insert("level-band");
        l.fill(100, 1, "exact");
        l.probe_hit(1, 3);
        l.probe_hit(1, 2);
        l.insert("composite");
        l.fill(200, 2, "split");
        l.evict(350, 2); // entry 2 dies hitless
        l.coalesce(1);
        let s = l.finish();
        assert_eq!(s.filled, 2);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.evicted, 1);
        assert_eq!(s.resident, 1);
        assert_eq!(s.zero_hit_evictions, 1);
        assert_eq!(s.hits_total, 2);
        assert_eq!(s.short_circuit_saved, 5);
        assert_eq!(s.entries_by_admit_reason["level-band"], 1);
        assert_eq!(s.entries_by_admit_reason["composite"], 1);
        assert_eq!(s.hits_by_admit_reason["level-band"], 2);
        assert_eq!(s.entries_by_pack["coalesced"], 1, "entry 1 absorbed one");
        assert_eq!(s.entries_by_pack["split"], 1);
        // Lifetime 250 cycles → bucket 8 (128..=255).
        assert_eq!(s.lifetime_cycles.buckets()[8], 1);
    }

    #[test]
    fn ledger_summary_merge_sums_fields() {
        let mut l1 = EntryLedger::new();
        l1.insert("all");
        l1.fill(0, 1, "exact");
        let mut l2 = EntryLedger::new();
        l2.insert("all");
        l2.fill(0, 1, "exact"); // same id: different shard stream
        l2.probe_hit(1, 1);
        let mut a = l1.finish();
        let b = l2.finish();
        a.merge(&b);
        assert_eq!(a.filled, 2);
        assert_eq!(a.resident, 2);
        assert_eq!(a.hits_total, 1);
        assert_eq!(a.entries_by_admit_reason["all"], 2);
    }

    #[test]
    fn regret_detects_victim_rereference() {
        let mut m = RegretMeter::new();
        // Evict victim spanning keys 10..=19 to admit entry 5.
        m.evict(0, 10, 19, 4, 5);
        let d0 = m.probe(0, 50, false, 0); // unrelated probe
        assert_eq!(d0, RegretDelta::default());
        let d1 = m.probe(0, 15, false, 0); // victim span re-probed → regret
        assert_eq!((d1.regretted, d1.vindicated), (1, 0));
        let s = m.finish();
        assert_eq!(s.regretted, 1);
        assert_eq!(s.vindicated, 0);
        assert_eq!(s.unresolved, 0);
        // Two probes after the eviction → distance 2 → bucket 2.
        assert_eq!(s.regret_distance.buckets()[2], 1);
        assert!(s.is_conserved());
    }

    #[test]
    fn regret_vindicated_when_incoming_entry_hits_first() {
        let mut m = RegretMeter::new();
        m.evict(0, 10, 19, 4, 5);
        m.probe(0, 30, true, 5); // incoming entry's first hit
        m.probe(0, 15, false, 0); // victim re-reference arrives too late
        let s = m.finish();
        assert_eq!((s.regretted, s.vindicated, s.unresolved), (0, 1, 0));
        assert!(s.is_conserved());
    }

    #[test]
    fn simultaneous_hit_and_rereference_counts_as_vindicated() {
        let mut m = RegretMeter::new();
        // The incoming entry covers part of the victim's span: one probe
        // can hit entry 5 *at* a key inside the victim span.
        m.evict(0, 10, 19, 4, 5);
        m.probe(0, 12, true, 5);
        let s = m.finish();
        assert_eq!((s.regretted, s.vindicated), (0, 1));
    }

    #[test]
    fn window_closes_unresolved_when_incoming_entry_dies() {
        let mut m = RegretMeter::new();
        m.evict(0, 10, 19, 4, 5);
        m.evict(0, 20, 29, 5, 6); // entry 5 evicted before any verdict
        let s = m.finish();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.unresolved, 2, "window 1 by death, window 2 by EOS");
        assert!(s.is_conserved());
    }

    #[test]
    fn ledger_invalidation_is_its_own_retirement_class() {
        let mut l = EntryLedger::new();
        l.insert("all");
        l.fill(100, 1, "exact");
        l.probe_hit(1, 2);
        l.insert("all");
        l.fill(100, 2, "exact");
        l.invalidate(300, 1);
        l.evict(400, 2);
        let s = l.finish();
        assert_eq!(
            (s.filled, s.evicted, s.invalidated, s.resident),
            (2, 1, 1, 0)
        );
        assert_eq!(
            s.zero_hit_evictions, 1,
            "an invalidated entry with hits is not a zero-hit eviction"
        );
        assert_eq!(s.filled, s.evicted + s.invalidated + s.resident);
        // Invalidating an unknown entry is a no-op (cross-shard noise).
        let mut l = EntryLedger::new();
        l.invalidate(1, 99);
        assert_eq!(l.finish(), LedgerSummary::default());
    }

    #[test]
    fn regret_window_closes_unresolved_on_invalidation() {
        let mut m = RegretMeter::new();
        m.evict(0, 10, 19, 4, 5);
        m.invalidate(5); // the incoming entry dies to coherence
        m.probe(0, 15, false, 0); // late re-reference: window already shut
        let s = m.finish();
        assert_eq!((s.regretted, s.vindicated, s.unresolved), (0, 0, 1));
        assert!(s.is_conserved());
    }

    #[test]
    fn index_mismatch_is_not_a_rereference() {
        let mut m = RegretMeter::new();
        m.evict(2, 10, 19, 4, 5);
        m.probe(1, 15, false, 0); // same key range, different index
        let s = m.finish();
        assert_eq!(s.regretted, 0);
        assert_eq!(s.unresolved, 1);
    }
}
