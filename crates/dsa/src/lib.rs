//! # metal-dsa — tile-grid models of the target DSAs
//!
//! The paper incorporates METAL into four DSAs (§2.1): **Gorgon**
//! (declarative relational patterns), **Capstan** (sparse tensor algebra),
//! **Aurochs** (dataflow threads over unordered scans) and **Widx**
//! (in-memory database index walkers). What distinguishes the DSAs, from
//! the memory system's perspective, is *how their kernels lower to walk
//! streams*: which keys are walked in which order, how much compute each
//! walk feeds (Table 2's Ops/Walk and Ops/Compute), and how much
//! parallelism the tile grid exposes.
//!
//! Each module lowers its DSA's kernels into
//! [`metal_core::request::WalkRequest`] streams:
//!
//! - [`gorgon`] — range scans, SELECT/WHERE analytics, hash JOINs.
//! - [`capstan`] — SpMM inner product over sparse tensors / fibers.
//! - [`aurochs`] — R-tree quadrilateral queries and PageRank-push.
//! - [`widx`] — hash-table probe streams.
//! - [`tile`] — the tile-grid description shared by all of them.
//!
//! The request lowering is deterministic given its inputs; dataset
//! randomness lives in `metal-workloads`.

pub mod aurochs;
pub mod capstan;
pub mod gorgon;
pub mod tile;
pub mod widx;

pub use tile::DsaSpec;
