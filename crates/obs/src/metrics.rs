//! Counting metrics registry: order-free aggregates over the event
//! stream.
//!
//! A [`MetricsRegistry`] is shared (`Arc`) across all (design, shard)
//! simulations of a run; each simulation gets a [`RegistrySink`] that
//! accumulates into shard-local maps and folds them into the registry on
//! flush, so the hot path never takes the global lock. Every aggregate
//! is a sum over events, so the merged totals are independent of shard
//! arrival order — the multi-shard determinism contract extends to these
//! metrics (`BTreeMap`s keep iteration order deterministic too).

use crate::json::Json;
use metal_sim::obs::{Event, EventSink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One tuner decision, as observed in the event stream.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TunerDecisionRecord {
    /// Completed-batch number (1-based).
    pub batch: u64,
    /// Index whose descriptor moved.
    pub index: u8,
    /// Parameter name (stable `TunedParam::as_str` tag).
    pub param: &'static str,
    /// Old value.
    pub from: u64,
    /// New value.
    pub to: u64,
    /// Simulated cycle of the decision.
    pub at: u64,
}

/// Aggregated metrics; also the shard-local accumulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total events per kind tag.
    pub events_by_kind: BTreeMap<&'static str, u64>,
    /// IX-cache probes per (index, set); [`metal_sim::obs::WIDE_SET`]
    /// collects the wide partition.
    pub probes_by_set: BTreeMap<(u8, u32), u64>,
    /// Kick-start probe hits per entry level (scan probes excluded, to
    /// match `RunStats::hit_levels`).
    pub hits_by_level: BTreeMap<u8, u64>,
    /// Distribution of walk levels short-circuited per kick-start hit.
    pub short_circuit_depths: BTreeMap<u8, u64>,
    /// Evictions per reason tag.
    pub evictions_by_reason: BTreeMap<&'static str, u64>,
    /// Descriptor inserts per deciding-arm tag.
    pub inserts_by_reason: BTreeMap<&'static str, u64>,
    /// Descriptor bypasses per deciding-arm tag.
    pub bypasses_by_reason: BTreeMap<&'static str, u64>,
    /// Net entry count per (index, set): fills minus evictions, i.e. the
    /// final occupancy of each set.
    pub occupancy_by_set: BTreeMap<(u8, u32), i64>,
    /// Every tuner decision observed (order is shard arrival order;
    /// sort before comparing across runs).
    pub tuner_decisions: Vec<TunerDecisionRecord>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self` (sums maps, concatenates decisions).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, n) in &other.events_by_kind {
            *self.events_by_kind.entry(k).or_insert(0) += n;
        }
        for (k, n) in &other.probes_by_set {
            *self.probes_by_set.entry(*k).or_insert(0) += n;
        }
        for (k, n) in &other.hits_by_level {
            *self.hits_by_level.entry(*k).or_insert(0) += n;
        }
        for (k, n) in &other.short_circuit_depths {
            *self.short_circuit_depths.entry(*k).or_insert(0) += n;
        }
        for (k, n) in &other.evictions_by_reason {
            *self.evictions_by_reason.entry(k).or_insert(0) += n;
        }
        for (k, n) in &other.inserts_by_reason {
            *self.inserts_by_reason.entry(k).or_insert(0) += n;
        }
        for (k, n) in &other.bypasses_by_reason {
            *self.bypasses_by_reason.entry(k).or_insert(0) += n;
        }
        for (k, n) in &other.occupancy_by_set {
            *self.occupancy_by_set.entry(*k).or_insert(0) += n;
        }
        self.tuner_decisions
            .extend(other.tuner_decisions.iter().cloned());
    }

    /// Total events per kind as a JSON object (manifest embedding).
    pub fn to_json(&self) -> Json {
        let kinds = Json::Obj(
            self.events_by_kind
                .iter()
                .map(|(k, n)| (k.to_string(), Json::UInt(*n)))
                .collect(),
        );
        let by_reason = |m: &BTreeMap<&'static str, u64>| {
            Json::Obj(
                m.iter()
                    .map(|(k, n)| (k.to_string(), Json::UInt(*n)))
                    .collect(),
            )
        };
        let by_level = Json::Obj(
            self.hits_by_level
                .iter()
                .map(|(l, n)| (l.to_string(), Json::UInt(*n)))
                .collect(),
        );
        let depths = Json::Obj(
            self.short_circuit_depths
                .iter()
                .map(|(d, n)| (d.to_string(), Json::UInt(*n)))
                .collect(),
        );
        Json::Obj(vec![
            ("events_by_kind".into(), kinds),
            ("hits_by_level".into(), by_level),
            ("short_circuit_depths".into(), depths),
            (
                "evictions_by_reason".into(),
                by_reason(&self.evictions_by_reason),
            ),
            (
                "inserts_by_reason".into(),
                by_reason(&self.inserts_by_reason),
            ),
            (
                "bypasses_by_reason".into(),
                by_reason(&self.bypasses_by_reason),
            ),
            (
                "tuner_decisions".into(),
                Json::UInt(self.tuner_decisions.len() as u64),
            ),
        ])
    }

    fn observe(&mut self, at: u64, ev: &Event) {
        *self.events_by_kind.entry(ev.kind()).or_insert(0) += 1;
        match *ev {
            Event::IxProbe {
                index,
                hit,
                level,
                short_circuit,
                set,
                scan,
                ..
            } => {
                *self.probes_by_set.entry((index, set)).or_insert(0) += 1;
                if hit && !scan {
                    *self.hits_by_level.entry(level).or_insert(0) += 1;
                    *self.short_circuit_depths.entry(short_circuit).or_insert(0) += 1;
                }
            }
            Event::Insert { reason, .. } => {
                *self.inserts_by_reason.entry(reason.as_str()).or_insert(0) += 1;
            }
            Event::Bypass { reason, .. } => {
                *self.bypasses_by_reason.entry(reason.as_str()).or_insert(0) += 1;
            }
            Event::Fill { index, set, .. } => {
                *self.occupancy_by_set.entry((index, set)).or_insert(0) += 1;
            }
            Event::Evict {
                index, set, reason, ..
            } => {
                *self.occupancy_by_set.entry((index, set)).or_insert(0) -= 1;
                *self.evictions_by_reason.entry(reason.as_str()).or_insert(0) += 1;
            }
            Event::TunerDecision {
                index,
                batch,
                param,
                from,
                to,
            } => {
                self.tuner_decisions.push(TunerDecisionRecord {
                    batch,
                    index,
                    param: param.as_str(),
                    from,
                    to,
                    at,
                });
            }
            Event::Invalidate {
                index, set, killed, ..
            } => {
                // A whole-entry kill vacates its slot; a partial
                // invalidation shrinks the entry in place.
                if killed {
                    *self.occupancy_by_set.entry((index, set)).or_insert(0) -= 1;
                }
            }
            // Coalesces only bump the per-kind counter: the absorbing
            // entry is already counted in occupancy by its fill.
            Event::WalkStart { .. }
            | Event::WalkEnd { .. }
            | Event::WalkBreakdown { .. }
            | Event::DramFetch { .. }
            | Event::Coalesce { .. }
            | Event::Split { .. } => {}
        }
    }
}

/// Process-wide metrics aggregation point.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    /// A shard-local sink feeding this registry.
    pub fn sink(self: &Arc<Self>) -> RegistrySink {
        RegistrySink {
            local: MetricsSnapshot::default(),
            registry: Arc::clone(self),
        }
    }

    /// A copy of the current aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("metrics poisoned").clone()
    }
}

/// Shard-local accumulator; folds into its registry on flush.
pub struct RegistrySink {
    local: MetricsSnapshot,
    registry: Arc<MetricsRegistry>,
}

impl EventSink for RegistrySink {
    fn emit(&mut self, at: u64, ev: &Event) {
        self.local.observe(at, ev);
    }

    fn flush(&mut self) {
        if self.local != MetricsSnapshot::default() {
            self.registry
                .inner
                .lock()
                .expect("metrics poisoned")
                .merge(&self.local);
            self.local = MetricsSnapshot::default();
        }
    }
}

impl Drop for RegistrySink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_sim::obs::{AdmitReason, EvictReason, PackMode, TunedParam};

    #[test]
    fn sink_accumulates_and_folds_on_flush() {
        let reg = MetricsRegistry::new();
        let mut sink = reg.sink();
        sink.emit(
            5,
            &Event::IxProbe {
                index: 0,
                key: 10,
                hit: true,
                level: 2,
                short_circuit: 3,
                set: 4,
                scan: false,
                entry: 1,
            },
        );
        sink.emit(
            6,
            &Event::IxProbe {
                index: 0,
                key: 11,
                hit: true,
                level: 0,
                short_circuit: 0,
                set: 4,
                scan: true, // scan probes never count toward hit levels
                entry: 2,
            },
        );
        sink.emit(
            7,
            &Event::Fill {
                index: 0,
                level: 2,
                set: 4,
                entry: 3,
                pack: PackMode::Exact,
            },
        );
        sink.emit(
            8,
            &Event::Evict {
                index: 0,
                level: 1,
                set: 4,
                reason: EvictReason::Capacity,
                entry: 1,
                lo: 0,
                hi: 15,
                for_entry: 3,
            },
        );
        assert_eq!(reg.snapshot(), MetricsSnapshot::default(), "pre-flush");
        sink.flush();
        let snap = reg.snapshot();
        assert_eq!(snap.events_by_kind["ix_probe"], 2);
        assert_eq!(snap.probes_by_set[&(0, 4)], 2);
        assert_eq!(snap.hits_by_level.get(&2), Some(&1));
        assert_eq!(snap.hits_by_level.get(&0), None, "scan hit excluded");
        assert_eq!(snap.short_circuit_depths[&3], 1);
        assert_eq!(snap.occupancy_by_set[&(0, 4)], 0, "one fill, one evict");
        assert_eq!(snap.evictions_by_reason["capacity"], 1);
    }

    #[test]
    fn merge_is_order_free() {
        let ev_a = Event::Insert {
            index: 0,
            level: 1,
            set: 2,
            life: 0,
            reason: AdmitReason::LevelBand,
        };
        let ev_b = Event::Bypass {
            index: 1,
            level: 3,
            reason: AdmitReason::Composite,
        };
        let mut a = MetricsSnapshot::default();
        a.observe(1, &ev_a);
        let mut b = MetricsSnapshot::default();
        b.observe(2, &ev_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Maps agree in either order; only the decision log is ordered.
        assert_eq!(ab.events_by_kind, ba.events_by_kind);
        assert_eq!(ab.inserts_by_reason["level-band"], 1);
        assert_eq!(ab.bypasses_by_reason["composite"], 1);
    }

    #[test]
    fn tuner_decisions_are_recorded() {
        let reg = MetricsRegistry::new();
        let mut sink = reg.sink();
        sink.emit(
            9,
            &Event::TunerDecision {
                index: 0,
                batch: 2,
                param: TunedParam::BandUpper,
                from: 3,
                to: 4,
            },
        );
        drop(sink); // drop folds outstanding local state
        let snap = reg.snapshot();
        assert_eq!(snap.tuner_decisions.len(), 1);
        let d = &snap.tuner_decisions[0];
        assert_eq!(
            (d.batch, d.param, d.from, d.to, d.at),
            (2, "band-upper", 3, 4, 9)
        );
    }
}
