//! Dynamic sparse tensor index (deep SpMM representation).
//!
//! Following the paper's SpMM setup (§4.1, Table 2): a matrix's non-zero
//! column ids are indexed in a B+tree; each leaf entry points to the
//! column's non-zero list (row ids + values) in a separate data region.
//! The inner-product kernel repeatedly fetches columns of B, so the reuse
//! pattern is *node reuse at the leaves*, with a lifetime equal to the
//! number of non-zeros per column.
//!
//! The dynamic-tensor format is "deep": the column index is a real
//! multi-level tree (vs. the shallow [`crate::fiber::FiberMatrix`]).

use crate::arena::NodeId;
use crate::bptree::BPlusTree;
use crate::walk::{Descend, NodeInfo, WalkIndex};
use metal_sim::types::{Addr, Key};

/// A sparse matrix stored as a deep dynamic tensor: B+tree over column ids,
/// per-column non-zero lists in a data region.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    tree: BPlusTree,
    /// Non-zeros per column, aligned with the sorted column-id order.
    nnz: Vec<u32>,
    /// (address, bytes) of each column's non-zero list.
    col_data: Vec<(Addr, u64)>,
    rows: u64,
    cols: u64,
    total_nnz: u64,
}

/// Bytes per stored non-zero: 4 B row id + 8 B value (padded to 12).
const NNZ_BYTES: u64 = 12;

impl SparseTensor {
    /// Builds a tensor for a `rows × cols` matrix from `(col_id, nnz)`
    /// pairs (sorted by column id, strictly increasing, nnz ≥ 1). The
    /// column index tree uses `max_keys` keys per node.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or unsorted, or any nnz is 0.
    pub fn build(
        rows: u64,
        cols: u64,
        columns: &[(Key, u32)],
        max_keys: usize,
        base: Addr,
    ) -> Self {
        assert!(!columns.is_empty(), "tensor needs at least one column");
        assert!(
            columns.windows(2).all(|w| w[0].0 < w[1].0),
            "column ids must be strictly sorted"
        );
        assert!(
            columns.iter().all(|&(_, n)| n > 0),
            "stored columns must have at least one non-zero"
        );
        let col_ids: Vec<Key> = columns.iter().map(|&(c, _)| c).collect();
        // Leaf record = 8 B pointer to the column's nnz list.
        let tree = BPlusTree::bulk_load(&col_ids, max_keys, base, 8);

        // Lay the nnz lists out after the pointer records.
        let lists_base = tree.data_base().get() + col_ids.len() as u64 * 8;
        let mut cursor = lists_base.div_ceil(64) * 64;
        let mut col_data = Vec::with_capacity(columns.len());
        let mut total_nnz = 0u64;
        for &(_, n) in columns {
            let bytes = n as u64 * NNZ_BYTES;
            col_data.push((Addr::new(cursor), bytes));
            cursor += bytes.div_ceil(64) * 64;
            total_nnz += n as u64;
        }

        SparseTensor {
            tree,
            nnz: columns.iter().map(|&(_, n)| n).collect(),
            col_data,
            rows,
            cols,
            total_nnz,
        }
    }

    /// Matrix row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Matrix column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total number of stored non-zeros.
    pub fn total_nnz(&self) -> u64 {
        self.total_nnz
    }

    /// Number of stored (non-empty) columns.
    pub fn stored_cols(&self) -> usize {
        self.nnz.len()
    }

    /// Non-zeros in stored column of rank `rank` (sorted order).
    pub fn nnz_of_rank(&self, rank: usize) -> u32 {
        self.nnz[rank]
    }

    /// The underlying column-id tree (for occupancy diagnostics).
    pub fn tree(&self) -> &BPlusTree {
        &self.tree
    }

    fn rank_of_value(&self, value_addr: Addr) -> usize {
        ((value_addr.get() - self.tree.data_base().get()) / 8) as usize
    }
}

impl WalkIndex for SparseTensor {
    fn root(&self) -> NodeId {
        self.tree.root()
    }

    fn node(&self, id: NodeId) -> NodeInfo {
        self.tree.node(id)
    }

    fn descend(&self, id: NodeId, key: Key) -> Descend {
        match self.tree.descend(id, key) {
            Descend::Leaf {
                found: true,
                value_addr,
                ..
            } => {
                let rank = self.rank_of_value(value_addr);
                let (addr, bytes) = self.col_data[rank];
                Descend::Leaf {
                    found: true,
                    value_addr: addr,
                    value_bytes: bytes,
                }
            }
            other => other,
        }
    }

    fn depth(&self) -> u8 {
        self.tree.depth()
    }

    fn total_blocks(&self) -> u64 {
        self.tree.total_blocks()
    }

    fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    fn next_leaf(&self, leaf: NodeId) -> Option<NodeId> {
        self.tree.next_leaf(leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns(n: u64) -> Vec<(Key, u32)> {
        (0..n).map(|c| (c * 2, (c % 7 + 1) as u32)).collect()
    }

    #[test]
    fn lookup_resolves_column_lists() {
        let t = SparseTensor::build(100, 400, &columns(200), 4, Addr::new(0));
        for (rank, &(c, n)) in columns(200).iter().enumerate() {
            match t.walk(c, |_, _| {}) {
                Descend::Leaf {
                    found: true,
                    value_addr,
                    value_bytes,
                } => {
                    assert_eq!(value_bytes, n as u64 * NNZ_BYTES);
                    assert_eq!(value_addr, t.col_data[rank].0);
                }
                other => panic!("column {c} should be found, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_columns_not_found() {
        let t = SparseTensor::build(100, 400, &columns(200), 4, Addr::new(0));
        assert!(!t.contains(1));
        assert!(!t.contains(399));
        assert!(!t.contains(1001));
    }

    #[test]
    fn nnz_lists_do_not_overlap() {
        let t = SparseTensor::build(100, 400, &columns(100), 4, Addr::new(0));
        for w in t.col_data.windows(2) {
            let (a, ab) = w[0];
            let (b, _) = w[1];
            assert!(a.get() + ab <= b.get(), "lists must be disjoint");
        }
    }

    #[test]
    fn deep_index_has_many_levels() {
        let t = SparseTensor::build(1000, 20_000, &columns(10_000), 4, Addr::new(0));
        assert!(t.depth() >= 5, "deep dynamic tensor, got {}", t.depth());
    }

    #[test]
    fn totals_add_up() {
        let cols = columns(50);
        let t = SparseTensor::build(10, 100, &cols, 4, Addr::new(0));
        let want: u64 = cols.iter().map(|&(_, n)| n as u64).sum();
        assert_eq!(t.total_nnz(), want);
        assert_eq!(t.stored_cols(), 50);
        assert_eq!(t.rows(), 10);
        assert_eq!(t.cols(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one non-zero")]
    fn rejects_empty_column() {
        let _ = SparseTensor::build(10, 10, &[(0, 1), (1, 0)], 4, Addr::new(0));
    }
}
