//! Structured simulation telemetry: typed events and the sink contract.
//!
//! Every figure in the paper ultimately hinges on *why* a walk hit or
//! missed — which level short-circuited, which descriptor decision
//! inserted vs. bypassed, when the tuner moved a band edge. [`Event`] is
//! the typed vocabulary for those moments and [`EventSink`] is the
//! observer interface the simulator emits them through.
//!
//! ## Contract
//!
//! - **Observe-only.** Sinks never influence simulation: every statistic
//!   in [`crate::stats::RunStats`] must be bit-identical whether a run is
//!   traced, counted, or executed with no sink at all. The
//!   `observability` integration tests pin this ("no observer effect").
//! - **Zero-cost when disabled.** Emission sites guard on an
//!   `Option<SharedSink>`; with no sink attached the only residue is an
//!   untaken branch. [`NullSink`] additionally reports
//!   `enabled() == false`, letting hot paths skip event construction even
//!   when a sink object is installed.
//! - **Deterministic counts.** Event emission is a pure function of the
//!   simulated execution, which is itself deterministic and independent
//!   of the worker-thread count (see `metal_core::runner`). Per-shard
//!   event *streams* are deterministic; a multi-shard run merges streams
//!   in nondeterministic arrival order, but per-kind counts, per-level
//!   histograms and set tallies are order-free and therefore invariant.
//!
//! Timestamps are simulated cycles. Engine-side events (walks, DRAM)
//! carry exact event-driven times; model-side events (probes, admission,
//! eviction, tuning) are stamped with the lane's planning time — the
//! cycle at which the lane most recently became schedulable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Why an IX-cache entry was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvictReason {
    /// Set-associativity conflict or total entry budget exhausted.
    Capacity,
    /// Displaced by a multi-entry insertion (a node wider than one block
    /// split into sub-range entries, Fig. 5 case 2).
    RangeSplit,
    /// A lifetime-pinned entry whose pin was eroded to zero by sustained
    /// eviction pressure (the stale-pin escape hatch).
    Lifetime,
}

impl EvictReason {
    /// Stable lowercase name (JSONL field value).
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::Capacity => "capacity",
            EvictReason::RangeSplit => "range-split",
            EvictReason::Lifetime => "lifetime",
        }
    }
}

/// Which descriptor arm decided an insert/bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdmitReason {
    /// Greedy `Descriptor::All` (METAL-IX's hardwired behaviour).
    All,
    /// `Descriptor::None` (pure-bypass ablation).
    None,
    /// Node pattern: level match (or mismatch, for a bypass).
    NodeLevel,
    /// Level pattern: inside (or outside) the cached band.
    LevelBand,
    /// Branch pattern: overlapping (or missing) the pivot window.
    BranchWindow,
    /// `Descriptor::Or` where both arms bypassed (an admitting arm
    /// reports its own reason instead).
    Composite,
}

impl AdmitReason {
    /// Stable lowercase name (JSONL field value).
    pub fn as_str(self) -> &'static str {
        match self {
            AdmitReason::All => "all",
            AdmitReason::None => "none",
            AdmitReason::NodeLevel => "node-level",
            AdmitReason::LevelBand => "level-band",
            AdmitReason::BranchWindow => "branch-window",
            AdmitReason::Composite => "composite",
        }
    }
}

/// Which descriptor parameter a tuner decision moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TunedParam {
    /// Level band's deep edge (`lower`).
    BandLower,
    /// Level band's shallow edge (`upper`).
    BandUpper,
    /// Branch pivot key.
    Pivot,
    /// Branch window half-width.
    Halfwidth,
    /// Branch depth bound.
    Depth,
    /// Node pattern's target level.
    NodeLevel,
}

impl TunedParam {
    /// Stable lowercase name (JSONL field value).
    pub fn as_str(self) -> &'static str {
        match self {
            TunedParam::BandLower => "band-lower",
            TunedParam::BandUpper => "band-upper",
            TunedParam::Pivot => "pivot",
            TunedParam::Halfwidth => "halfwidth",
            TunedParam::Depth => "depth",
            TunedParam::NodeLevel => "node-level",
        }
    }
}

/// How an admitted node was physically packed into IX-cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PackMode {
    /// The node fit one entry exactly (≤ one key block).
    Exact,
    /// A wide node split into `ceil(bytes/64)` sub-range entries
    /// (Fig. 5 case 2).
    Split,
    /// Same-level siblings coalesced into one shared entry.
    Coalesced,
}

impl PackMode {
    /// Stable lowercase name (JSONL field value).
    pub fn as_str(self) -> &'static str {
        match self {
            PackMode::Exact => "exact",
            PackMode::Split => "split",
            PackMode::Coalesced => "coalesced",
        }
    }
}

/// Which structural index mutation triggered a range invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutKind {
    /// A node overflowed and split into two siblings.
    Split,
    /// An underflowing node was folded into a sibling.
    Merge,
    /// Keys/children moved between siblings (borrow).
    Rebalance,
}

impl MutKind {
    /// Stable lowercase name (JSONL field value).
    pub fn as_str(self) -> &'static str {
        match self {
            MutKind::Split => "split",
            MutKind::Merge => "merge",
            MutKind::Rebalance => "rebalance",
        }
    }
}

/// Sentinel set id for entries living in the fully-associative wide
/// partition (which has no set index).
pub const WIDE_SET: u32 = u32::MAX;

/// Sentinel entry id meaning "no entry" (a probe miss, or an eviction
/// that made room without a specific incoming entry). Real entry ids
/// are ≥ 1 and unique within one `IxCache` lifetime.
pub const NO_ENTRY: u64 = 0;

/// One telemetry event. All payloads are plain integers so events are
/// `Copy` and serialization needs no lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A lane began a walk (engine-side; `walk` is the per-shard
    /// sequence number in issue order).
    WalkStart {
        /// Per-shard walk sequence number.
        walk: u64,
        /// Lane the walk runs on.
        lane: u32,
    },
    /// A walk completed (engine-side).
    WalkEnd {
        /// Per-shard walk sequence number.
        walk: u64,
        /// Lane the walk ran on.
        lane: u32,
        /// End-to-end walk latency in cycles.
        latency: u64,
    },
    /// Cycle-accounting breakdown of one completed walk (engine-side,
    /// emitted immediately before the matching [`Event::WalkEnd`]).
    /// The components partition the walk's latency exactly:
    /// `ix_probe + compute + queue + stall + hidden == latency`.
    WalkBreakdown {
        /// Per-shard walk sequence number.
        walk: u64,
        /// Lane the walk ran on.
        lane: u32,
        /// Cycles spent accessing the cache SRAM (probe latency).
        ix_probe: u64,
        /// Cycles of walker compute (node scan, tag match).
        compute: u64,
        /// Cycles queued for the walker FSM or an SRAM port.
        queue: u64,
        /// DRAM fetch stall cycles left exposed on the critical path.
        stall: u64,
        /// DRAM wait cycles hidden under sibling compute in the lane's
        /// MLP window (always 0 at `mlp_width == 1`).
        hidden: u64,
        /// End-to-end walk latency (the components' exact sum).
        latency: u64,
    },
    /// A DRAM fetch was issued (engine-side; `done` is its completion
    /// time, so `done - at` includes queueing and bandwidth effects).
    DramFetch {
        /// Lane that issued the fetch.
        lane: u32,
        /// Physical byte address.
        addr: u64,
        /// Transfer size in bytes.
        bytes: u64,
        /// Completion cycle.
        done: u64,
    },
    /// An IX-cache probe (model-side). `scan` distinguishes the leaf-chain
    /// probes of a range scan from the walk's kick-start probe; per-level
    /// hit statistics (`RunStats::hit_levels`) count only the latter.
    IxProbe {
        /// Index the probe targets.
        index: u8,
        /// Probed key.
        key: u64,
        /// Whether any covering entry matched.
        hit: bool,
        /// Level of the matched entry (0 when `hit` is false).
        level: u8,
        /// Walk levels skipped thanks to the hit (0 on a miss).
        short_circuit: u8,
        /// Narrow-partition set the probe selected.
        set: u32,
        /// True for range-scan leaf probes.
        scan: bool,
        /// Stable id of the matched entry ([`NO_ENTRY`] on a miss).
        entry: u64,
    },
    /// The descriptor admitted a walked node into the IX-cache.
    Insert {
        /// Index the node belongs to.
        index: u8,
        /// Node level (leaf = 0).
        level: u8,
        /// Placement set ([`WIDE_SET`] for the wide partition).
        set: u32,
        /// Pin lifetime granted (0 = unpinned).
        life: u32,
        /// Which descriptor arm admitted it.
        reason: AdmitReason,
    },
    /// The descriptor bypassed a walked node.
    Bypass {
        /// Index the node belongs to.
        index: u8,
        /// Node level (leaf = 0).
        level: u8,
        /// Which descriptor arm rejected it.
        reason: AdmitReason,
    },
    /// The IX-cache physically created an entry (after dedup/coalescing;
    /// a multi-block insert fills several entries).
    Fill {
        /// Index the entry belongs to.
        index: u8,
        /// Entry level.
        level: u8,
        /// Placement set ([`WIDE_SET`] for the wide partition).
        set: u32,
        /// Stable id of the created entry.
        entry: u64,
        /// How the admitted node was packed into this entry.
        pack: PackMode,
    },
    /// An admitted node was folded into an existing same-level sibling
    /// entry instead of creating a new one (pack-mode upgrade: the
    /// referenced entry is now [`PackMode::Coalesced`]).
    Coalesce {
        /// Index the entry belongs to.
        index: u8,
        /// Entry level.
        level: u8,
        /// Placement set of the absorbing entry.
        set: u32,
        /// Stable id of the absorbing entry.
        entry: u64,
    },
    /// The IX-cache evicted an entry.
    Evict {
        /// Index the entry belonged to.
        index: u8,
        /// Entry level.
        level: u8,
        /// Set it was evicted from ([`WIDE_SET`] for wide).
        set: u32,
        /// Why it was chosen.
        reason: EvictReason,
        /// Stable id of the evicted entry.
        entry: u64,
        /// Low key of the victim's span (regret re-reference window).
        lo: u64,
        /// High key of the victim's span (inclusive).
        hi: u64,
        /// Id of the incoming entry the eviction made room for
        /// ([`NO_ENTRY`] when not attributable to one insertion).
        for_entry: u64,
    },
    /// A structural index mutation (node split/merge/rebalance) whose
    /// pre-mutation key span must no longer serve cached short-circuits.
    Split {
        /// Index that mutated.
        index: u8,
        /// Level of the restructured node (leaf = 0).
        level: u8,
        /// Low key of the stale span (the node's pre-mutation span, or
        /// the union span for merges/rebalances).
        lo: u64,
        /// High key of the stale span (inclusive).
        hi: u64,
        /// Which structural mutation produced the span.
        op: MutKind,
    },
    /// The IX-cache invalidated an entry's overlap with a stale range
    /// (coherence response to [`Event::Split`], or a key deletion).
    Invalidate {
        /// Index the entry belongs to.
        index: u8,
        /// Entry level.
        level: u8,
        /// Set it lives in ([`WIDE_SET`] for wide).
        set: u32,
        /// Stable id of the affected entry.
        entry: u64,
        /// Low key of the entry's span before invalidation.
        lo: u64,
        /// High key of the entry's span before invalidation.
        hi: u64,
        /// True when every segment overlapped and the entry was removed;
        /// false for a partial invalidation that shrank the entry.
        killed: bool,
    },
    /// The per-batch tuner moved one descriptor parameter.
    TunerDecision {
        /// Index whose descriptor was retuned.
        index: u8,
        /// Completed-batch number (1-based).
        batch: u64,
        /// Which parameter moved.
        param: TunedParam,
        /// Old value.
        from: u64,
        /// New value.
        to: u64,
    },
}

impl Event {
    /// Stable lowercase kind tag (JSONL `ev` field, counter key).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::WalkStart { .. } => "walk_start",
            Event::WalkEnd { .. } => "walk_end",
            Event::WalkBreakdown { .. } => "walk_breakdown",
            Event::DramFetch { .. } => "dram_fetch",
            Event::IxProbe { .. } => "ix_probe",
            Event::Insert { .. } => "insert",
            Event::Bypass { .. } => "bypass",
            Event::Fill { .. } => "fill",
            Event::Coalesce { .. } => "coalesce",
            Event::Evict { .. } => "evict",
            Event::Split { .. } => "split",
            Event::Invalidate { .. } => "invalidate",
            Event::TunerDecision { .. } => "tuner_decision",
        }
    }
}

/// Observer interface for simulation telemetry.
///
/// Implementations must be observe-only (no feedback into simulation
/// state) and should be cheap: emission happens inside the simulator's
/// hot loop whenever a sink is attached.
pub trait EventSink {
    /// Whether the sink wants events at all. Emission sites may skip
    /// event construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event stamped at simulated cycle `at`.
    fn emit(&mut self, at: u64, ev: &Event);

    /// Flushes buffered output (end of a shard/run).
    fn flush(&mut self) {}
}

/// A sink that drops everything and reports itself disabled. A run with a
/// `NullSink` attached must be bit-identical to a run with no sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _at: u64, _ev: &Event) {}
}

/// Buffers every event in memory (tests, trace inspection).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded `(at, event)` stream, in emission order.
    pub events: Vec<(u64, Event)>,
}

impl EventSink for VecSink {
    fn emit(&mut self, at: u64, ev: &Event) {
        self.events.push((at, *ev));
    }
}

/// Counts events per kind without storing them (cheap invariance checks).
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// Creates an empty counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Count for one kind tag (0 when never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All per-kind counts, ordered by kind tag.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl EventSink for CountingSink {
    fn emit(&mut self, _at: u64, ev: &Event) {
        *self.counts.entry(ev.kind()).or_insert(0) += 1;
    }
}

/// Fans one event stream out to several sinks.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl MultiSink {
    /// Creates a fan-out over `sinks`.
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        MultiSink { sinks }
    }
}

impl EventSink for MultiSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&mut self, at: u64, ev: &Event) {
        for s in &mut self.sinks {
            if s.enabled() {
                s.emit(at, ev);
            }
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// Shared handle through which the engine and the walk model emit into
/// the same sink. Sinks live on the simulating thread (each logical shard
/// constructs its own), so single-threaded `Rc<RefCell<…>>` sharing is
/// sufficient and cheap.
pub type SharedSink = Rc<RefCell<dyn EventSink>>;

/// Wraps a sink into a [`SharedSink`] handle.
pub fn shared<S: EventSink + 'static>(sink: S) -> SharedSink {
    Rc::new(RefCell::new(sink))
}

/// Emits `ev` into an optional shared sink, skipping construction-side
/// work when no sink is attached or the sink is disabled.
#[inline]
pub fn emit_to(sink: &Option<SharedSink>, at: u64, ev: &Event) {
    if let Some(s) = sink {
        let mut s = s.borrow_mut();
        if s.enabled() {
            s.emit(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::default();
        s.emit(1, &Event::WalkStart { walk: 0, lane: 0 });
        s.emit(
            5,
            &Event::WalkEnd {
                walk: 0,
                lane: 0,
                latency: 4,
            },
        );
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].0, 1);
        assert_eq!(s.events[1].1.kind(), "walk_end");
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::new();
        for _ in 0..3 {
            s.emit(0, &Event::WalkStart { walk: 0, lane: 0 });
        }
        s.emit(
            0,
            &Event::Evict {
                index: 0,
                level: 1,
                set: 3,
                reason: EvictReason::Capacity,
                entry: 7,
                lo: 0,
                hi: 63,
                for_entry: 8,
            },
        );
        assert_eq!(s.count("walk_start"), 3);
        assert_eq!(s.count("evict"), 1);
        assert_eq!(s.count("ix_probe"), 0);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn multi_sink_fans_out_to_enabled_only() {
        struct Probe(Rc<RefCell<u64>>);
        impl EventSink for Probe {
            fn emit(&mut self, _at: u64, _ev: &Event) {
                *self.0.borrow_mut() += 1;
            }
        }
        let n = Rc::new(RefCell::new(0));
        let mut m = MultiSink::new(vec![Box::new(NullSink), Box::new(Probe(n.clone()))]);
        assert!(m.enabled());
        m.emit(0, &Event::WalkStart { walk: 0, lane: 0 });
        assert_eq!(*n.borrow(), 1);
    }

    #[test]
    fn emit_to_skips_disabled_sinks() {
        let sink: Option<SharedSink> = Some(shared(NullSink));
        // Must not panic and must not deliver.
        emit_to(&sink, 0, &Event::WalkStart { walk: 0, lane: 0 });
        let none: Option<SharedSink> = None;
        emit_to(&none, 0, &Event::WalkStart { walk: 0, lane: 0 });
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(EvictReason::RangeSplit.as_str(), "range-split");
        assert_eq!(AdmitReason::LevelBand.as_str(), "level-band");
        assert_eq!(TunedParam::BandUpper.as_str(), "band-upper");
        assert_eq!(PackMode::Coalesced.as_str(), "coalesced");
    }

    #[test]
    fn mutation_kinds_are_stable() {
        assert_eq!(MutKind::Split.as_str(), "split");
        assert_eq!(MutKind::Merge.as_str(), "merge");
        assert_eq!(MutKind::Rebalance.as_str(), "rebalance");
        let ev = Event::Split {
            index: 0,
            level: 1,
            lo: 10,
            hi: 90,
            op: MutKind::Split,
        };
        assert_eq!(ev.kind(), "split");
        let ev = Event::Invalidate {
            index: 0,
            level: 0,
            set: WIDE_SET,
            entry: 3,
            lo: 10,
            hi: 90,
            killed: true,
        };
        assert_eq!(ev.kind(), "invalidate");
    }

    #[test]
    fn coalesce_kind_is_stable() {
        let ev = Event::Coalesce {
            index: 1,
            level: 2,
            set: 5,
            entry: 9,
        };
        assert_eq!(ev.kind(), "coalesce");
    }
}
