//! Walk requests: the unit of work a DSA issues against an index.
//!
//! DSA front-ends (`metal-dsa`) lower their kernels into streams of
//! [`WalkRequest`]s — "the compute tiles interface with the data-structure
//! using keys" (§3). A request names the index to walk (JOIN and the
//! R-tree walk two), the key, how much compute the walk feeds, and
//! range-scan / lifetime metadata the patterns consume.

use metal_sim::types::Key;

/// What a walk request does to the index once its walk resolves.
///
/// Every request walks root-to-leaf first (a write must locate its leaf
/// exactly like a read). `Select` stops there; the write ops then mutate
/// the modeled B+tree and trigger the IX-cache range-invalidation
/// protocol for any node splits/merges/rebalances they cause. Against
/// indexes that are not B+trees, write ops degrade to plain lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpKind {
    /// Read-only point lookup (the only op pre-mutation workloads use).
    #[default]
    Select,
    /// Insert the key (no-op if present; may split nodes).
    Insert,
    /// Rewrite the key's record in place (no structural change).
    Update,
    /// Remove the key (no-op if absent; may merge/rebalance nodes).
    Delete,
}

impl OpKind {
    /// Stable lowercase tag (CSV columns, trace labels).
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Select => "select",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Delete => "delete",
        }
    }

    /// Whether this op can mutate the index.
    pub fn is_write(self) -> bool {
        !matches!(self, OpKind::Select)
    }
}

/// One index walk plus its attached work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRequest {
    /// Which of the experiment's indexes to walk.
    pub index: u8,
    /// The probe key.
    pub key: Key,
    /// What the walk does once it resolves (CRUD mixes set this).
    pub op: OpKind,
    /// Reuse estimate for the walked node (pins node-pattern entries;
    /// e.g. SpMM's non-zeros per column).
    pub life_hint: u32,
    /// Compute operations this walk feeds (Table 2's Ops/Compute share).
    pub compute_ops: u64,
    /// Whether to fetch the leaf's data payload after the walk.
    pub fetch_value: bool,
    /// Additional leaf-chain hops after the walk (range scans).
    pub scan_leaves: u32,
}

impl WalkRequest {
    /// A bare point lookup on index 0.
    pub fn lookup(key: Key) -> Self {
        WalkRequest {
            index: 0,
            key,
            op: OpKind::Select,
            life_hint: 0,
            compute_ops: 0,
            fetch_value: true,
            scan_leaves: 0,
        }
    }

    /// Builder-style CRUD op selection.
    pub fn with_op(mut self, op: OpKind) -> Self {
        self.op = op;
        self
    }

    /// Builder-style index selection.
    pub fn on_index(mut self, index: u8) -> Self {
        self.index = index;
        self
    }

    /// Builder-style compute attachment.
    pub fn with_compute(mut self, ops: u64) -> Self {
        self.compute_ops = ops;
        self
    }

    /// Builder-style lifetime hint.
    pub fn with_life(mut self, life: u32) -> Self {
        self.life_hint = life;
        self
    }

    /// Builder-style range-scan extension.
    pub fn with_scan(mut self, leaves: u32) -> Self {
        self.scan_leaves = leaves;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let r = WalkRequest::lookup(42)
            .on_index(1)
            .with_compute(100)
            .with_life(7)
            .with_scan(3);
        assert_eq!(r.index, 1);
        assert_eq!(r.key, 42);
        assert_eq!(r.compute_ops, 100);
        assert_eq!(r.life_hint, 7);
        assert_eq!(r.scan_leaves, 3);
        assert!(r.fetch_value);
    }

    #[test]
    fn default_lookup_shape() {
        let r = WalkRequest::lookup(5);
        assert_eq!(r.index, 0);
        assert_eq!(r.scan_leaves, 0);
        assert_eq!(r.compute_ops, 0);
        assert_eq!(r.op, OpKind::Select);
        assert!(!r.op.is_write());
    }

    #[test]
    fn op_kinds_are_stable_and_classified() {
        for (op, tag, write) in [
            (OpKind::Select, "select", false),
            (OpKind::Insert, "insert", true),
            (OpKind::Update, "update", true),
            (OpKind::Delete, "delete", true),
        ] {
            assert_eq!(op.as_str(), tag);
            assert_eq!(op.is_write(), write);
        }
        let r = WalkRequest::lookup(5).with_op(OpKind::Delete);
        assert_eq!(r.op, OpKind::Delete);
    }
}
