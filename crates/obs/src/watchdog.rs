//! Anomaly watchdogs: streaming detectors over the epoch series.
//!
//! Each detector walks one design's [`TimeSeries`] in epoch order,
//! maintaining a trailing baseline of the previous
//! [`WatchdogConfig::trailing`] windows, and emits an [`Alert`] when a
//! window deviates past its threshold:
//!
//! - **hit-rate collapse** — the window's IX-cache hit rate falls below
//!   [`WatchdogConfig::hit_collapse_ratio`] × the trailing mean hit rate;
//! - **scan storm** — scan probes dominate the window
//!   ([`WatchdogConfig::scan_fraction`]) while evictions run at
//!   [`WatchdogConfig::scan_evict_ratio`] × the trailing mean (the
//!   cache-flushing signature of a range-scan burst);
//! - **regret spike** — regret verdicts in the window exceed
//!   [`WatchdogConfig::regret_spike_ratio`] × the trailing mean and the
//!   [`WatchdogConfig::min_regret`] floor.
//! - **stall collapse** — the window's DRAM-stall fraction of attributed
//!   walk cycles falls below [`WatchdogConfig::stall_collapse_ratio`] ×
//!   the trailing mean *and* under the
//!   [`WatchdogConfig::compute_bound_stall`] absolute bar while the
//!   baseline was memory-bound: the walks went compute-bound, so the
//!   cache stopped helping.
//!
//! A window only fires once its baseline is fully populated and it has
//! at least [`WatchdogConfig::min_probes`] probes, so short runs and
//! cold-start windows stay quiet. Detection is a pure function of the
//! series, which is itself worker-count invariant, so alert lists are
//! deterministic.

use crate::analysis::TraceAnalysis;
use crate::json::Json;
use crate::timeseries::TimeSeries;
use std::collections::VecDeque;

/// Watchdog thresholds (documented in DESIGN.md §8c).
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Windows in the trailing baseline.
    pub trailing: usize,
    /// Minimum probes in a window before any detector may fire.
    pub min_probes: u64,
    /// Hit-rate collapse: fire when `hit_rate < ratio × baseline`.
    pub hit_collapse_ratio: f64,
    /// Scan storm: minimum scan fraction of the window's probes.
    pub scan_fraction: f64,
    /// Scan storm: evictions vs trailing mean evictions.
    pub scan_evict_ratio: f64,
    /// Regret spike: windowed regret vs trailing mean regret.
    pub regret_spike_ratio: f64,
    /// Regret spike: absolute floor of regret verdicts in the window.
    pub min_regret: u64,
    /// Stall collapse: fire when `stall_frac < ratio × baseline`.
    pub stall_collapse_ratio: f64,
    /// Stall collapse: the compute-bound bar — the window must fall
    /// under it and the baseline must have been above it.
    pub compute_bound_stall: f64,
    /// Stall collapse: minimum attributed cycles in a window before the
    /// detector may fire (the breakdown analogue of `min_probes`).
    pub min_breakdown_cycles: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            trailing: 4,
            min_probes: 64,
            hit_collapse_ratio: 0.5,
            scan_fraction: 0.5,
            scan_evict_ratio: 2.0,
            regret_spike_ratio: 4.0,
            min_regret: 8,
            stall_collapse_ratio: 0.5,
            compute_bound_stall: 0.25,
            min_breakdown_cycles: 1024,
        }
    }
}

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    /// Window hit rate collapsed versus the trailing baseline.
    HitRateCollapse,
    /// Scan-dominated window flushing the cache.
    ScanStorm,
    /// Windowed eviction regret spiked versus the trailing baseline.
    RegretSpike,
    /// DRAM-stall fraction collapsed into compute-bound territory — the
    /// walks no longer wait on memory, so the cache stopped helping.
    StallCollapse,
}

impl AlertKind {
    /// Stable lowercase tag (JSON `kind` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertKind::HitRateCollapse => "hit-rate-collapse",
            AlertKind::ScanStorm => "scan-storm",
            AlertKind::RegretSpike => "regret-spike",
            AlertKind::StallCollapse => "stall-collapse",
        }
    }
}

/// One structured watchdog alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Design whose series fired.
    pub design: String,
    /// Epoch window the detector fired on.
    pub epoch: u64,
    /// Which detector fired.
    pub kind: AlertKind,
    /// The observed metric (hit rate, evictions, regret count).
    pub value: f64,
    /// The trailing baseline it was compared against.
    pub baseline: f64,
    /// Human-readable one-liner for reports and stderr.
    pub detail: String,
}

impl Alert {
    /// The alert's JSON object (field order fixed).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("design".into(), Json::str(self.design.as_str())),
            ("epoch".into(), Json::UInt(self.epoch)),
            ("kind".into(), Json::str(self.kind.as_str())),
            ("value".into(), Json::Num(self.value)),
            ("baseline".into(), Json::Num(self.baseline)),
            ("detail".into(), Json::str(self.detail.as_str())),
        ])
    }
}

/// Trailing per-window baseline samples.
struct Baseline {
    hit_rates: VecDeque<f64>,
    evictions: VecDeque<f64>,
    regrets: VecDeque<f64>,
    stall_fracs: VecDeque<f64>,
    cap: usize,
}

impl Baseline {
    fn new(cap: usize) -> Baseline {
        Baseline {
            hit_rates: VecDeque::new(),
            evictions: VecDeque::new(),
            regrets: VecDeque::new(),
            stall_fracs: VecDeque::new(),
            cap,
        }
    }

    fn full(&self) -> bool {
        self.hit_rates.len() == self.cap
    }

    fn push(&mut self, hit_rate: f64, evictions: f64, regret: f64, stall_frac: f64) {
        for (q, v) in [
            (&mut self.hit_rates, hit_rate),
            (&mut self.evictions, evictions),
            (&mut self.regrets, regret),
            (&mut self.stall_fracs, stall_frac),
        ] {
            q.push_back(v);
            if q.len() > self.cap {
                q.pop_front();
            }
        }
    }

    fn mean(q: &VecDeque<f64>) -> f64 {
        if q.is_empty() {
            0.0
        } else {
            q.iter().sum::<f64>() / q.len() as f64
        }
    }
}

/// Runs every detector over one design's series, in epoch order.
pub fn scan_series(design: &str, series: &TimeSeries, cfg: &WatchdogConfig) -> Vec<Alert> {
    let mut alerts = Vec::new();
    let mut base = Baseline::new(cfg.trailing.max(1));
    for (&epoch, w) in &series.windows {
        let hits = w.hits_total() as f64;
        let probes = w.probes as f64;
        let hit_rate = if w.probes > 0 { hits / probes } else { 0.0 };
        let evictions = w.evictions_total() as f64;
        let regret = w.regretted as f64;
        let cycles = w.ix_probe_cycles
            + w.compute_cycles
            + w.queue_cycles
            + w.stall_cycles
            + w.hidden_cycles;
        let stall_frac = if cycles > 0 {
            w.stall_cycles as f64 / cycles as f64
        } else {
            0.0
        };
        if base.full() && cycles >= cfg.min_breakdown_cycles {
            let base_stall = Baseline::mean(&base.stall_fracs);
            if base_stall > cfg.compute_bound_stall
                && stall_frac < cfg.stall_collapse_ratio * base_stall
                && stall_frac < cfg.compute_bound_stall
            {
                alerts.push(Alert {
                    design: design.to_string(),
                    epoch,
                    kind: AlertKind::StallCollapse,
                    value: stall_frac,
                    baseline: base_stall,
                    detail: format!(
                        "stall fraction {stall_frac:.3} collapsed from trailing \
                         {base_stall:.3} into compute-bound territory — the cache \
                         stopped helping"
                    ),
                });
            }
        }
        if base.full() && w.probes >= cfg.min_probes {
            let base_hit = Baseline::mean(&base.hit_rates);
            if base_hit > 0.0 && hit_rate < cfg.hit_collapse_ratio * base_hit {
                alerts.push(Alert {
                    design: design.to_string(),
                    epoch,
                    kind: AlertKind::HitRateCollapse,
                    value: hit_rate,
                    baseline: base_hit,
                    detail: format!(
                        "hit rate {hit_rate:.3} fell below {:.0}% of trailing {base_hit:.3}",
                        cfg.hit_collapse_ratio * 100.0
                    ),
                });
            }
            let scan_frac = w.scan_probes as f64 / probes;
            let base_evict = Baseline::mean(&base.evictions).max(1.0);
            if scan_frac >= cfg.scan_fraction && evictions >= cfg.scan_evict_ratio * base_evict {
                alerts.push(Alert {
                    design: design.to_string(),
                    epoch,
                    kind: AlertKind::ScanStorm,
                    value: evictions,
                    baseline: base_evict,
                    detail: format!(
                        "scans are {:.0}% of probes and {evictions:.0} evictions \
                         run {:.1}x the trailing mean",
                        scan_frac * 100.0,
                        evictions / base_evict
                    ),
                });
            }
            let base_regret = Baseline::mean(&base.regrets).max(1.0);
            if w.regretted >= cfg.min_regret && regret >= cfg.regret_spike_ratio * base_regret {
                alerts.push(Alert {
                    design: design.to_string(),
                    epoch,
                    kind: AlertKind::RegretSpike,
                    value: regret,
                    baseline: base_regret,
                    detail: format!(
                        "{regret:.0} regretted evictions run {:.1}x the trailing mean",
                        regret / base_regret
                    ),
                });
            }
        }
        base.push(hit_rate, evictions, regret, stall_frac);
    }
    alerts
}

/// Runs the watchdogs over every design carrying a series; alerts come
/// back sorted (design, epoch, kind) so equal analyses produce equal
/// alert lists.
pub fn scan_analysis(analysis: &TraceAnalysis, cfg: &WatchdogConfig) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for (design, d) in &analysis.designs {
        if let Some(series) = &d.series {
            alerts.extend(scan_series(design, series, cfg));
        }
    }
    alerts.sort_by(|a, b| (&a.design, a.epoch, a.kind).cmp(&(&b.design, b.epoch, b.kind)));
    alerts
}

/// The full analysis document with the alert section appended (omitted
/// when no watchdog fired, keeping unwindowed documents byte-stable).
pub fn analysis_document(analysis: &TraceAnalysis, alerts: &[Alert]) -> Json {
    let doc = analysis.to_json();
    if alerts.is_empty() {
        return doc;
    }
    match doc {
        Json::Obj(mut fields) => {
            fields.push((
                "alerts".into(),
                Json::Arr(alerts.iter().map(Alert::to_json).collect()),
            ));
            Json::Obj(fields)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::validate_analysis_gated;
    use metal_sim::epoch::EpochSpec;

    fn steady_window(probes: u64, hits: u64) -> crate::timeseries::WindowCounters {
        let mut w = crate::timeseries::WindowCounters {
            probes,
            misses: probes - hits,
            ..Default::default()
        };
        w.hits_by_level.insert(2, hits);
        w
    }

    #[test]
    fn hit_rate_collapse_fires_after_baseline_fills() {
        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        for e in 0..6 {
            *s.window_mut(e) = steady_window(1000, 800);
        }
        // Epoch 6 collapses to 10% hits.
        *s.window_mut(6) = steady_window(1000, 100);
        let alerts = scan_series("metal", &s, &WatchdogConfig::default());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::HitRateCollapse);
        assert_eq!(alerts[0].epoch, 6);
        assert!(alerts[0].value < alerts[0].baseline);
    }

    #[test]
    fn quiet_windows_and_cold_start_stay_silent() {
        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        // A collapse inside the cold-start prefix must not fire.
        *s.window_mut(0) = steady_window(1000, 900);
        *s.window_mut(1) = steady_window(1000, 50);
        // Low-activity windows below min_probes must not fire either.
        for e in 2..8 {
            *s.window_mut(e) = steady_window(10, 9);
        }
        *s.window_mut(8) = steady_window(10, 0);
        assert!(scan_series("m", &s, &WatchdogConfig::default()).is_empty());
    }

    #[test]
    fn scan_storm_and_regret_spike_fire() {
        let cfg = WatchdogConfig::default();
        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        for e in 0..5 {
            let w = s.window_mut(e);
            *w = steady_window(1000, 700);
            w.evictions_by_reason.insert("capacity".into(), 10);
            w.regretted = 2;
        }
        {
            let w = s.window_mut(5);
            *w = steady_window(1000, 700);
            w.scan_probes = 900;
            w.evictions_by_reason.insert("capacity".into(), 100);
            w.regretted = 40;
        }
        let alerts = scan_series("metal", &s, &cfg);
        let kinds: Vec<AlertKind> = alerts.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::ScanStorm), "{kinds:?}");
        assert!(kinds.contains(&AlertKind::RegretSpike), "{kinds:?}");
        assert!(alerts.iter().all(|a| a.epoch == 5));
    }

    #[test]
    fn stall_collapse_fires_when_walks_go_compute_bound() {
        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        // Memory-bound baseline: ~80% of attributed cycles are exposed
        // DRAM stall.
        for e in 0..6 {
            let w = s.window_mut(e);
            w.ix_probe_cycles = 300;
            w.compute_cycles = 1500;
            w.queue_cycles = 200;
            w.stall_cycles = 8000;
        }
        // Epoch 6 goes compute-bound: 5% stall.
        {
            let w = s.window_mut(6);
            w.ix_probe_cycles = 300;
            w.compute_cycles = 9000;
            w.queue_cycles = 200;
            w.stall_cycles = 500;
        }
        let alerts = scan_series("metal", &s, &WatchdogConfig::default());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].kind, AlertKind::StallCollapse);
        assert_eq!(alerts[0].epoch, 6);
        assert!(alerts[0].value < 0.25, "window is compute-bound");
        assert!(alerts[0].baseline > 0.25, "baseline was memory-bound");
        assert!(alerts[0].detail.contains("compute-bound"));
    }

    #[test]
    fn stall_collapse_respects_floor_and_baseline_regime() {
        let cfg = WatchdogConfig::default();
        // A collapse in a tiny window (under min_breakdown_cycles) must
        // stay silent, as must one whose baseline was already
        // compute-bound.
        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        for e in 0..6 {
            let w = s.window_mut(e);
            w.compute_cycles = 100;
            w.stall_cycles = 400; // memory-bound but only 500 cycles
        }
        s.window_mut(6).compute_cycles = 500;
        assert!(scan_series("m", &s, &cfg).is_empty(), "under the floor");

        let mut s = TimeSeries::new(EpochSpec::Walks(100));
        for e in 0..7 {
            let w = s.window_mut(e);
            w.compute_cycles = 9000; // already compute-bound
            w.stall_cycles = 1000;
        }
        s.window_mut(7).compute_cycles = 10_000;
        assert!(
            scan_series("m", &s, &cfg).is_empty(),
            "no memory-bound regime to collapse from"
        );
    }

    #[test]
    fn alert_document_gates_validation() {
        let analysis = TraceAnalysis::default();
        let alert = Alert {
            design: "metal".into(),
            epoch: 3,
            kind: AlertKind::ScanStorm,
            value: 12.0,
            baseline: 2.0,
            detail: "test".into(),
        };
        let doc = analysis_document(&analysis, &[alert]);
        let rendered = doc.render();
        assert!(rendered.contains("\"kind\":\"scan-storm\""));
        // Alerts alone are not a structural failure (designs may be
        // empty here only because the fixture is synthetic)…
        let fired = doc.get("alerts").and_then(Json::as_arr).unwrap();
        assert_eq!(fired.len(), 1);
        // …but the deny gate sees them.
        let err = validate_analysis_gated(&doc, true).unwrap_err();
        assert!(err.contains("alert"), "{err}");
    }
}
