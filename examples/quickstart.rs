//! Quickstart: build an index, run the same walks under every cache
//! design, and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metal::core::prelude::*;
use metal::index::bptree::BPlusTree;
use metal::index::walk::WalkIndex;
use metal::sim::types::{Addr, Key};

fn main() {
    // 1. An index: 100k keys, bulk-loaded into a B+tree shaped to the
    //    paper's 10-level depth.
    let keys: Vec<Key> = (0..100_000).map(|i| i * 3).collect();
    let tree = BPlusTree::bulk_load_with_depth(&keys, 10, Addr::new(0), 64);
    println!(
        "index: {} keys, depth {}, {} nodes, {} KiB footprint",
        keys.len(),
        tree.depth(),
        tree.node_count(),
        tree.total_blocks() * 64 / 1024
    );

    // 2. A skewed request stream: 70% of walks hit 2% of keys.
    let requests: Vec<WalkRequest> = (0..20_000usize)
        .map(|i| {
            let key = if i % 10 < 7 {
                ((i as u64).wrapping_mul(0x9E3779B9) % 2_000) * 3
            } else {
                ((i as u64).wrapping_mul(6_364_136_223_846_793_005) % 100_000) * 3
            };
            WalkRequest::lookup(key).with_compute(16)
        })
        .collect();
    let exp = Experiment::single(&tree, &requests);

    // 3. Run the paper's comparison set: streaming DSA, address cache,
    //    Belady-optimal address cache, X-Cache, METAL-IX and METAL.
    let cfg = RunConfig::default().with_lanes(64);
    let band = LevelDescriptor::band(2, 4);
    let reports = run_comparison(&exp, &cfg, 64 * 1024, vec![Descriptor::Level(band)], 2_000);

    let stream = &reports[0];
    println!(
        "\n{:<11} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "design", "speedup", "missrate", "walk(cyc)", "DRAM(µJ)", "ws-frac"
    );
    for r in &reports {
        println!(
            "{:<11} {:>8.2}x {:>9.3} {:>10.1} {:>10.1} {:>9.3}",
            r.design,
            r.speedup_vs(stream),
            r.stats.miss_rate(),
            r.stats.avg_walk_latency(),
            r.stats.dram_energy_fj as f64 / 1e9,
            r.stats.working_set_fraction(),
        );
    }

    let metal = &reports[6];
    println!(
        "\nMETAL probe count: {} ({}x fewer cache accesses than the address design)",
        metal.stats.probes,
        reports[1].stats.probes / metal.stats.probes.max(1)
    );
}
