//! The native execution backend: runs walks for real instead of
//! simulating them.
//!
//! [`run_native_design`] accepts the same `(DesignSpec, Experiment,
//! RunConfig)` triple as [`crate::runner::run_design`] and returns the
//! same [`RunReport`], but every walk *executes*: nodes are materialized
//! B+tree pages in block files ([`super::tree::PagedTree`]), the
//! [`IxCache`] is a real software fast path (a probe hit resolves its
//! node from the deserialized hot map without touching the page layer),
//! and mutations restructure the paged tree on disk. The cache-decision
//! sequence is a line-for-line port of the simulator's `plan_metal` /
//! `apply_write`, so both backends make **identical** cache decisions
//! and must agree exactly on every semantic outcome: `found_walks`,
//! `write_walks`, `node_splits`, `node_merges`, probes/misses/inserts/
//! bypasses, per-level hit counts, `levels_skipped` and invalidation
//! counts. `crates/verify/tests/backend_equivalence.rs` and the
//! `ix_fuzz --backend native` arm enforce that agreement permanently.
//!
//! Only designs whose cache semantics are lane-independent are
//! executable natively: `Stream`, `MetalIx` and `Metal`. (All three use
//! one shared cache, and the simulator resolves every cache interaction
//! at plan time in cursor order — so a sequential native executor
//! observes the exact same interleaving. `MetalPrivate` splits state by
//! lane and the address-block designs model block-grain hardware the
//! native walk has no analogue for.)
//!
//! The same [`Event`] stream is reused: one native walk emits its
//! cache-side events, then `WalkStart`, its `DramFetch`s, `WalkEnd` —
//! the exact grammar a single-lane simulator trace has — so traces,
//! `analyze`, the epoch time-series and the flight recorder work
//! unchanged. Timestamps are a deterministic per-walk logical clock
//! (measured wall time is reported out-of-band in [`NativeMetrics`],
//! never inside the event stream, keeping traces reproducible).
//!
//! # Memory-level parallelism: the architect/scout pipeline
//!
//! With `RunConfig::mlp_width = N > 1` the shard loop keeps a window of
//! `N` walks in flight, split into one **architect** and up to `N − 1`
//! **scouts**. The architect is the oldest walk; it executes the exact
//! serial path above — probes, admissions, mutations, events — and is
//! the *only* walk with semantically visible effects. Scouts are
//! speculative descents for the walks behind it: each scout picks its
//! start node with the side-effect-free [`IxCache::peek`], then
//! advances one tree level per yield in round-robin with its sibling
//! scouts (the software pipeline), issuing a prefetch at every level —
//! a staged page read for cold nodes, a `core::arch` prefetch hint for
//! nodes already decoded in the hot map. Prefetched nodes land in the
//! tree's bounded stage, where the architect's demand reads find them
//! page-free.
//!
//! Correctness is preserved by construction, not by luck: scouts never
//! probe, admit, evict or mutate, so the cache-decision sequence stays
//! a pure function of walk order at every width and sim/native
//! equivalence survives (`RunStats` is bit-identical across widths;
//! only measured I/O attribution in [`NativeMetrics`] shifts between
//! demand and prefetch counters). On any applied mutation the paged
//! tree drops its whole prefetch stage and the shard loop re-opens its
//! scout window from post-mutation state — the cheap, obviously
//! correct staleness guard.

use super::tree::{materialize_tree, ns_since, PagedTree};
use crate::descriptor::{Admit, AdmitCtx, Descriptor};
use crate::ixcache::IxCache;
use crate::models::{DesignSpec, Experiment};
use crate::range::KeyRange;
use crate::request::{OpKind, WalkRequest};
use crate::runner::{shard_bounds, RunConfig, RunReport, ShardCtx};
use crate::tuner::{TuneDecision, Tuner};
use metal_index::bptree::{BPlusTree, MutationReport};
use metal_index::walk::Descend;
use metal_index::NodeId;
use metal_sim::obs::{emit_to, Event, SharedSink, NO_ENTRY};
use metal_sim::stats::RunStats;
use metal_sim::types::Key;
use std::collections::HashSet;
use std::sync::atomic::Ordering;

/// Walks between hot-map garbage collections (drops deserialized nodes
/// the IX-cache no longer references; observe-only bookkeeping).
const HOT_GC_WALKS: u64 = 1024;

/// Measured (not modeled) execution counters of one native run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeMetrics {
    /// Wall-clock nanoseconds spent executing walks (materialization
    /// excluded).
    pub wall_ns: u64,
    /// Walks executed (denominator for walks/sec).
    pub walks: u64,
    /// Pages read from the block files (out-of-core "page faults").
    pub page_reads: u64,
    /// Pages written to the block files.
    pub page_writes: u64,
    /// Node reads served by the hot map (IX-cache software fast path).
    pub hot_hits: u64,
    /// Node reads that went to the page layer and deserialized.
    pub cold_reads: u64,
    /// Node reads served by the MLP prefetch stage (a scout already
    /// paid the page read; zero at `mlp_width = 1`).
    pub staged_hits: u64,
    /// Nodes scouts read ahead of demand (zero at `mlp_width = 1`).
    pub prefetched: u64,
    /// Node store-backs (serialize + page write).
    pub node_writes: u64,
    /// Total pages across all tree files at the end of the run.
    pub pages: u64,
    /// Free-list pages at the end of the run (extents returned by
    /// merges/relocations).
    pub free_pages: u64,
    /// Wall nanoseconds in block-file page loads (demand cold reads and
    /// scout prefetches) — the measured analogue of the simulator's
    /// DRAM-stall cycles.
    pub page_read_ns: u64,
    /// Wall nanoseconds deserializing loaded pages into nodes.
    pub decode_ns: u64,
    /// Wall nanoseconds probing the IX-cache (zero for `stream`).
    pub ix_probe_ns: u64,
    /// Wall nanoseconds descending and scanning tree nodes. Phase
    /// timers are independent gauges, not a partition of `wall_ns`:
    /// node-scan time includes the page reads its walks triggered.
    pub node_scan_ns: u64,
    /// Wall nanoseconds applying write ops and their invalidations.
    pub mutation_ns: u64,
    /// Wall nanoseconds driving the MLP scout window (zero at width 1).
    pub staging_ns: u64,
}

impl NativeMetrics {
    /// Measured walk throughput.
    pub fn walks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.walks as f64 * 1e9 / self.wall_ns as f64
    }

    /// Measured fraction of wall time spent loading pages — the number
    /// the analyze report sets beside the simulator's modeled
    /// DRAM-stall fraction.
    pub fn page_io_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.page_read_ns as f64 / self.wall_ns as f64
    }

    /// Accumulates another shard's metrics.
    pub fn merge(&mut self, other: &NativeMetrics) {
        self.wall_ns += other.wall_ns;
        self.walks += other.walks;
        self.page_reads += other.page_reads;
        self.page_writes += other.page_writes;
        self.hot_hits += other.hot_hits;
        self.cold_reads += other.cold_reads;
        self.staged_hits += other.staged_hits;
        self.prefetched += other.prefetched;
        self.node_writes += other.node_writes;
        self.pages += other.pages;
        self.free_pages += other.free_pages;
        self.page_read_ns += other.page_read_ns;
        self.decode_ns += other.decode_ns;
        self.ix_probe_ns += other.ix_probe_ns;
        self.node_scan_ns += other.node_scan_ns;
        self.mutation_ns += other.mutation_ns;
        self.staging_ns += other.staging_ns;
    }
}

/// Whether `spec` can run on the native backend (see module docs).
pub fn supports_native(spec: &DesignSpec) -> bool {
    matches!(
        spec,
        DesignSpec::Stream | DesignSpec::MetalIx { .. } | DesignSpec::Metal { .. }
    )
}

/// The IX-cache and policy state of a METAL-family native run.
struct CacheBits {
    cache: IxCache,
    descriptors: Vec<Descriptor>,
    tuners: Option<Vec<Tuner>>,
}

/// Scoped-phase wall-time accumulators of one native shard (rolled
/// into [`NativeMetrics`]; page-read and decode time accrue inside
/// [`PagedTree`]'s own counters). Observe-only: reading the clock never
/// changes an outcome.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseNs {
    ix_probe_ns: u64,
    node_scan_ns: u64,
    mutation_ns: u64,
}

/// One shard's native execution state.
struct NativeRun {
    trees: Vec<PagedTree>,
    cache: Option<CacheBits>,
    stats: RunStats,
    sink: Option<SharedSink>,
    /// Deterministic logical clock: one tick per walk; every event of a
    /// walk is stamped with its tick.
    clock: u64,
    walk_seq: u64,
    /// DRAM fetches of the walk in flight, emitted after `WalkStart` in
    /// engine order.
    pending_dram: Vec<(u64, u64)>,
    /// Scoped phase timers (measured, never modeled).
    phase: PhaseNs,
}

fn io<T>(r: super::blockfile::Result<T>) -> T {
    r.unwrap_or_else(|e| panic!("native backend storage failure: {e}"))
}

/// One speculative prefetch descent in the MLP window (see the module
/// docs): its walk will soon run for real; until then this scout
/// pushes that walk's nodes toward memory one level per yield.
struct Scout {
    /// Tree (experiment index) the scout descends.
    index: usize,
    /// Key the future walk looks up.
    key: Key,
    /// Node to prefetch at the next yield.
    cur: NodeId,
    /// Remaining level budget (depth-bounded; guards cyclic corruption
    /// so a broken link can never wedge the pipeline).
    hops: u8,
}

impl NativeRun {
    fn emit(&self, ev: Event) {
        emit_to(&self.sink, self.clock, &ev);
    }

    fn observing(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one node/value fetch that would hit DRAM: counted for
    /// semantic equivalence (`dram_node_reads` when `node`), emitted as
    /// a `DramFetch` after this walk's `WalkStart`.
    fn fetch(&mut self, addr: u64, bytes: u64, node: bool) {
        if node {
            self.stats.dram_node_reads += 1;
        }
        if self.observing() {
            self.pending_dram.push((addr, bytes));
        }
    }

    /// Opens a scout for `req`: start node from a side-effect-free
    /// cache peek (the same short-circuit the real probe will take on a
    /// hit), else the root. Never touches statistics or cache state.
    fn open_scout(&self, req: &WalkRequest) -> Option<Scout> {
        let idx = req.index as usize;
        let tree = self.trees.get(idx)?;
        let start = self
            .cache
            .as_ref()
            .and_then(|b| b.cache.peek(req.index, req.key))
            .map_or(tree.root(), |h| h.node);
        Some(Scout {
            index: idx,
            key: req.key,
            cur: start,
            hops: tree.depth().saturating_add(2),
        })
    }

    /// Advances one scout by one tree level: prefetch its current node,
    /// peek the staged/hot contents, step to the child. Returns whether
    /// the scout still has levels to descend; it dies quietly on a leaf,
    /// an exhausted budget, a failed prefetch or a stage overflow — a
    /// scout's failure is a lost prefetch, never an error.
    fn advance_scout(&mut self, s: &mut Scout) -> bool {
        if s.hops == 0 {
            return false;
        }
        s.hops -= 1;
        let tree = &mut self.trees[s.index];
        if tree.prefetch_node(s.cur).is_err() {
            return false;
        }
        let Some(node) = tree.peek_node(s.cur) else {
            return false;
        };
        match tree.descend_in(node, s.key) {
            Descend::Child(c) => {
                s.cur = c;
                true
            }
            Descend::Leaf { .. } => false,
        }
    }

    /// Executes one walk request end to end, mirroring the simulator's
    /// event grammar: cache events, `WalkStart`, `DramFetch`s, `WalkEnd`.
    /// Returns whether the walk applied a structural mutation (the MLP
    /// scout window resets on it).
    fn run_walk(&mut self, req: &WalkRequest) -> bool {
        self.clock += 1;
        let walk = self.walk_seq;
        self.walk_seq += 1;
        self.stats.walks += 1;
        self.pending_dram.clear();
        if self.cache.is_some() {
            self.exec_metal(req);
        } else {
            self.exec_stream(req);
        }
        let mut mutated = false;
        if req.op.is_write() {
            mutated = self.apply_write(req);
        }
        if self.observing() {
            self.emit(Event::WalkStart { walk, lane: 0 });
            let fetches = std::mem::take(&mut self.pending_dram);
            for (addr, bytes) in fetches {
                self.emit(Event::DramFetch {
                    lane: 0,
                    addr,
                    bytes,
                    done: self.clock,
                });
            }
            self.emit(Event::WalkEnd {
                walk,
                lane: 0,
                latency: 1,
            });
        }
        mutated
    }

    /// Streaming baseline: every node access goes to the page layer
    /// (port of the simulator's `Stream` plan arm).
    fn exec_stream(&mut self, req: &WalkRequest) {
        let t0 = std::time::Instant::now();
        let tree = &mut self.trees[req.index as usize];
        let (path, leaf) = io(tree.path_from(tree.root(), req.key));
        let mut fetches: Vec<(u64, u64)> = path
            .iter()
            .map(|&(_, info)| (info.addr.get(), info.bytes))
            .collect();
        let scan_start = path.last().map(|&(id, _)| id);
        if let Some(start) = scan_start {
            for (_, info) in io(tree.scan_chain(start, req.scan_leaves)) {
                fetches.push((info.addr.get(), info.bytes));
            }
        }
        self.phase.node_scan_ns += ns_since(t0);
        for (addr, bytes) in fetches {
            self.fetch(addr, bytes, true);
        }
        if matches!(leaf, Descend::Leaf { found: true, .. }) {
            self.stats.found_walks += 1;
        }
        if let Descend::Leaf {
            found: true,
            value_addr,
            value_bytes,
        } = leaf
        {
            if value_bytes > 0 {
                self.fetch(value_addr.get(), value_bytes, false);
            }
        }
        if req.compute_ops > 0 {
            self.stats.compute_ops += req.compute_ops;
        }
    }

    /// METAL walk: probe the IX-cache, short-circuit from the hot map on
    /// a hit, fetch and admit the remaining path (port of `plan_metal`,
    /// minus timing/energy — the decision and statistics sequence is
    /// identical).
    fn exec_metal(&mut self, req: &WalkRequest) {
        let observing = self.observing();
        let idx = req.index as usize;
        let ctx = AdmitCtx {
            life_hint: req.life_hint,
        };
        let bits = self.cache.as_mut().expect("metal design has a cache");
        let tree = &mut self.trees[idx];

        let t0 = std::time::Instant::now();
        let probe_set = if observing {
            bits.cache.probe_set(req.index, req.key)
        } else {
            0
        };
        let probe = bits.cache.probe(req.index, req.key);
        self.phase.ix_probe_ns += ns_since(t0);
        self.stats.probes += 1;
        if let Some(ts) = &mut bits.tuners {
            ts[idx].observe_probe(probe.is_some());
            ts[idx].observe_key(req.key);
        }

        let t0 = std::time::Instant::now();
        let (path, leaf, skipped) = match probe {
            Some(hit) => {
                if self.stats.hit_levels.len() <= hit.level as usize {
                    self.stats.hit_levels.resize(hit.level as usize + 1, 0);
                }
                self.stats.hit_levels[hit.level as usize] += 1;
                if let Some(ts) = &mut bits.tuners {
                    ts[idx].observe_node(hit.level, hit.node, tree.node_bytes(hit.node));
                }
                let skipped = (tree.depth() as u64).saturating_sub(hit.level as u64);
                // The cached pointer resolves through the hot map — this
                // is the software fast path the native backend measures.
                let node = io(tree.read_node(hit.node));
                match tree.descend_in(&node, req.key) {
                    Descend::Child(c) => {
                        let (path, leaf) = io(tree.path_from(c, req.key));
                        (path, leaf, skipped)
                    }
                    leaf @ Descend::Leaf { .. } => (Vec::new(), leaf, skipped),
                }
            }
            None => {
                self.stats.misses += 1;
                let (path, leaf) = io(tree.path_from(tree.root(), req.key));
                (path, leaf, 0)
            }
        };
        self.phase.node_scan_ns += ns_since(t0);
        self.stats.levels_skipped += skipped;
        if observing {
            emit_to(
                &self.sink,
                self.clock,
                &Event::IxProbe {
                    index: req.index,
                    key: req.key,
                    hit: probe.is_some(),
                    level: probe.map_or(0, |h| h.level),
                    short_circuit: skipped.min(u8::MAX as u64) as u8,
                    set: probe_set,
                    scan: false,
                    entry: probe.map_or(NO_ENTRY, |h| h.entry),
                },
            );
        }

        let mut fetches: Vec<(u64, u64)> = Vec::with_capacity(path.len());
        for &(id, info) in &path {
            fetches.push((info.addr.get(), info.bytes));
            Self::admit_node(
                &mut self.trees[idx],
                self.cache.as_mut().expect("metal design has a cache"),
                &mut self.stats,
                &self.sink,
                self.clock,
                req.index,
                id,
                &info,
                &ctx,
            );
        }

        // Range scan: probe per scanned leaf, fetch and admit misses.
        let scan_start = path.last().map(|&(i, _)| i).or(probe.map(|h| h.node));
        if let Some(start) = scan_start {
            let t0 = std::time::Instant::now();
            let chain = io(self.trees[idx].scan_chain(start, req.scan_leaves));
            self.phase.node_scan_ns += ns_since(t0);
            for (id, info) in chain {
                let bits = self.cache.as_mut().expect("metal design has a cache");
                let scan_set = if observing {
                    bits.cache.probe_set(req.index, info.lo)
                } else {
                    0
                };
                let hit = bits
                    .cache
                    .probe(req.index, info.lo)
                    .filter(|h| h.node == id);
                let leaf_hit = hit.is_some();
                self.stats.probes += 1;
                if observing {
                    emit_to(
                        &self.sink,
                        self.clock,
                        &Event::IxProbe {
                            index: req.index,
                            key: info.lo,
                            hit: leaf_hit,
                            level: info.level,
                            short_circuit: 0,
                            set: scan_set,
                            scan: true,
                            entry: hit.map_or(NO_ENTRY, |h| h.entry),
                        },
                    );
                }
                if leaf_hit {
                    // Hot-path leaf: resolved from the deserialized map.
                    let _ = io(self.trees[idx].read_node(id));
                } else {
                    self.stats.misses += 1;
                    fetches.push((info.addr.get(), info.bytes));
                    Self::admit_node(
                        &mut self.trees[idx],
                        self.cache.as_mut().expect("metal design has a cache"),
                        &mut self.stats,
                        &self.sink,
                        self.clock,
                        req.index,
                        id,
                        &info,
                        &ctx,
                    );
                }
            }
        }

        for (addr, bytes) in fetches {
            self.fetch(addr, bytes, true);
        }
        if matches!(leaf, Descend::Leaf { found: true, .. }) {
            self.stats.found_walks += 1;
        }
        if let Descend::Leaf {
            found: true,
            value_addr,
            value_bytes,
        } = leaf
        {
            // The record read itself (the simulator stages it through a
            // tile scratchpad; semantically it is one value fetch).
            if value_bytes > 0 {
                self.fetch(value_addr.get(), value_bytes, false);
            }
        }
        if req.compute_ops > 0 {
            self.stats.compute_ops += req.compute_ops;
        }

        // Close the walk for the tuner (may retune the descriptor).
        let bits = self.cache.as_mut().expect("metal design has a cache");
        let mut decisions: Vec<TuneDecision> = Vec::new();
        if let Some(ts) = &mut bits.tuners {
            let t = &mut ts[idx];
            if t.walk_done(&mut bits.descriptors[idx]) {
                decisions = t.take_decisions();
            }
        }
        if observing {
            for d in decisions {
                emit_to(
                    &self.sink,
                    self.clock,
                    &Event::TunerDecision {
                        index: req.index,
                        batch: d.batch,
                        param: d.param,
                        from: d.from,
                        to: d.to,
                    },
                );
            }
        }
    }

    /// Descriptor decision + insertion for one fetched node (port of the
    /// simulator's `admit_node`). On insert the node also enters the
    /// tree's hot map — the cache now holds a live pointer to it.
    #[allow(clippy::too_many_arguments)]
    fn admit_node(
        tree: &mut PagedTree,
        bits: &mut CacheBits,
        stats: &mut RunStats,
        sink: &Option<SharedSink>,
        clock: u64,
        index_id: u8,
        id: NodeId,
        info: &metal_index::NodeInfo,
        ctx: &AdmitCtx,
    ) {
        let observing = sink.is_some();
        if let Some(ts) = &mut bits.tuners {
            ts[index_id as usize].observe_node(info.level, id, info.bytes);
        }
        let (verdict, reason) = bits.descriptors[index_id as usize].decide(info, ctx);
        match verdict {
            Admit::Insert { life } => {
                let range = KeyRange::new(info.lo, info.hi);
                if observing {
                    emit_to(
                        sink,
                        clock,
                        &Event::Insert {
                            index: index_id,
                            level: info.level,
                            set: bits.cache.placement_set(index_id, &range),
                            life,
                            reason,
                        },
                    );
                }
                bits.cache
                    .insert(index_id, id, range, info.level, info.bytes, life);
                // Recording is always on natively (the drains double as
                // hot-map bookkeeping); emit only when observed.
                let fills: Vec<_> = bits.cache.drain_fills().collect();
                let evicts: Vec<_> = bits.cache.drain_evictions().collect();
                let coalesces: Vec<_> = bits.cache.drain_coalesces().collect();
                if observing {
                    for f in fills {
                        emit_to(
                            sink,
                            clock,
                            &Event::Fill {
                                index: f.index,
                                level: f.level,
                                set: f.set,
                                entry: f.entry,
                                pack: f.pack,
                            },
                        );
                    }
                    for co in coalesces {
                        emit_to(
                            sink,
                            clock,
                            &Event::Coalesce {
                                index: co.index,
                                level: co.level,
                                set: co.set,
                                entry: co.entry,
                            },
                        );
                    }
                    for e in evicts {
                        emit_to(
                            sink,
                            clock,
                            &Event::Evict {
                                index: e.index,
                                level: e.level,
                                set: e.set,
                                reason: e.reason,
                                entry: e.entry,
                                lo: e.lo,
                                hi: e.hi,
                                for_entry: e.for_entry,
                            },
                        );
                    }
                }
                stats.inserts += 1;
                io(tree.admit_hot(id));
            }
            Admit::Bypass => {
                stats.bypasses += 1;
                if observing {
                    emit_to(
                        sink,
                        clock,
                        &Event::Bypass {
                            index: index_id,
                            level: info.level,
                            reason,
                        },
                    );
                }
            }
        }
    }

    /// Executes `req`'s write op against the paged tree (port of the
    /// simulator's `apply_write` + `invalidate_stale`). Returns whether
    /// a structural mutation was applied (updates-in-place and no-op
    /// writes leave prefetched state valid).
    fn apply_write(&mut self, req: &WalkRequest) -> bool {
        let t0 = std::time::Instant::now();
        let mutated = self.apply_write_inner(req);
        self.phase.mutation_ns += ns_since(t0);
        mutated
    }

    fn apply_write_inner(&mut self, req: &WalkRequest) -> bool {
        self.stats.write_walks += 1;
        let idx = req.index as usize;
        if req.op == OpKind::Update {
            let tree = &mut self.trees[idx];
            let (_, leaf) = io(tree.path_from(tree.root(), req.key));
            if let Descend::Leaf {
                found: true,
                value_addr,
                value_bytes,
            } = leaf
            {
                if value_bytes > 0 {
                    self.fetch(value_addr.get(), value_bytes, false);
                }
            }
            return false;
        }
        let report: MutationReport = match req.op {
            OpKind::Insert => io(self.trees[idx].insert_key(req.key)),
            OpKind::Delete => io(self.trees[idx].delete_key(req.key)),
            OpKind::Select | OpKind::Update => return false,
        };
        if !report.applied {
            return false;
        }
        self.stats.node_splits += report.splits as u64;
        self.stats.node_merges += (report.merges + report.rebalances) as u64;
        for &(addr, bytes) in &report.writes {
            self.fetch(addr.get(), bytes, false);
        }

        // Coherence: kill or shrink stale cached tags, exactly as the
        // simulator does after the same mutation.
        let observing = self.observing();
        let mut records = Vec::new();
        if let Some(bits) = &mut self.cache {
            let before = bits.cache.stats().invalidation_kills;
            for span in &report.stale {
                bits.cache.invalidate_range(
                    req.index,
                    Some(span.level),
                    KeyRange::new(span.lo, span.hi),
                );
            }
            let after = bits.cache.stats().invalidation_kills;
            self.stats.entries_invalidated += after - before;
            records.extend(bits.cache.drain_invalidations());
        }
        if observing {
            for span in &report.stale {
                self.emit(Event::Split {
                    index: req.index,
                    level: span.level,
                    lo: span.lo,
                    hi: span.hi,
                    op: span.op,
                });
            }
            for r in records {
                self.emit(Event::Invalidate {
                    index: r.index,
                    level: r.level,
                    set: r.set,
                    entry: r.entry,
                    lo: r.lo,
                    hi: r.hi,
                    killed: r.killed,
                });
            }
        }
        true
    }

    /// Drops hot nodes the IX-cache no longer references (periodic,
    /// observe-only — affects measured page I/O, never outcomes).
    fn gc_hot(&mut self) {
        let Some(bits) = &self.cache else { return };
        let snapshot = bits.cache.snapshot();
        for (i, tree) in self.trees.iter_mut().enumerate() {
            let keep: HashSet<NodeId> = snapshot
                .iter()
                .filter(|e| e.index as usize == i)
                .flat_map(|e| e.segs.iter().map(|&(_, n)| n))
                .collect();
            tree.retain_hot(|id| keep.contains(&id));
        }
    }
}

/// Runs one shard of the request stream natively (fresh trees with the
/// shard's prefix writes replayed, fresh cache/tuner state — the same
/// cold-start semantics as the simulator's sharded runner).
fn run_native_shard(
    spec: &DesignSpec,
    exp: &Experiment<'_>,
    cfg: &RunConfig,
    shard: u64,
    prefix: &[WalkRequest],
) -> RunReport {
    // Start from the pristine experiment trees and replay the prefix
    // writes (cost-free), like `DesignModel::new_with_prefix`.
    let mut start: Vec<BPlusTree> = exp
        .indexes
        .iter()
        .map(|i| {
            i.as_bptree()
                .unwrap_or_else(|| {
                    panic!(
                        "the native backend executes B+tree indexes only (design {})",
                        spec.label()
                    )
                })
                .clone()
        })
        .collect();
    for req in prefix {
        if let Some(t) = start.get_mut(req.index as usize) {
            match req.op {
                OpKind::Insert => {
                    t.insert_key(req.key);
                }
                OpKind::Delete => {
                    t.delete_key(req.key);
                }
                OpKind::Select | OpKind::Update => {}
            }
        }
    }

    let trees: Vec<PagedTree> = start.iter().map(|t| io(materialize_tree(t))).collect();
    let cache = match spec {
        DesignSpec::Stream => None,
        DesignSpec::MetalIx { ix } => Some(CacheBits {
            cache: IxCache::new(*ix),
            descriptors: vec![Descriptor::All; exp.indexes.len()],
            tuners: None,
        }),
        DesignSpec::Metal {
            ix,
            descriptors,
            tune,
            batch_walks,
        } => {
            assert_eq!(
                descriptors.len(),
                exp.indexes.len(),
                "need one descriptor per index"
            );
            let tuners = if *tune {
                Some(
                    exp.indexes
                        .iter()
                        .map(|i| Tuner::new(i.depth(), *batch_walks, ix.entries))
                        .collect(),
                )
            } else {
                None
            };
            Some(CacheBits {
                cache: IxCache::new(*ix),
                descriptors: descriptors.clone(),
                tuners,
            })
        }
        other => panic!(
            "design '{}' is not supported by the native backend \
             (supported: stream, metal-ix, metal)",
            other.label()
        ),
    };

    let sink = cfg.obs.sink_factory.as_ref().and_then(|make| {
        make(&ShardCtx {
            design: spec.label().to_string(),
            shard,
            epoch: cfg.epoch,
        })
    });
    let mut run = NativeRun {
        trees,
        cache,
        stats: RunStats::new(),
        sink,
        clock: 0,
        walk_seq: 0,
        pending_dram: Vec::new(),
        phase: PhaseNs::default(),
    };
    // Recording stays on: the drains double as hot-map bookkeeping, and
    // recording never changes cache decisions.
    if let Some(bits) = &mut run.cache {
        bits.cache.set_recording(true);
    }

    let width = cfg.mlp_width();
    // High-water mark of the scout window: request positions below it
    // were already scouted (and need no second pass while no mutation
    // intervenes).
    let mut scouted = 0usize;
    let mut staging_ns = 0u64;
    let t0 = std::time::Instant::now();
    for (n, req) in exp.requests.iter().enumerate() {
        if width > 1 {
            // Fill the window with scouts for walks n+1 ..= n+width-1,
            // then software-pipeline them: round-robin, one tree level
            // per yield, until every scout has finished its descent.
            // The architect (walk n) then runs the serial path below
            // and finds its nodes staged.
            let ts = std::time::Instant::now();
            let window_end = (n + width).min(exp.requests.len());
            let mut slots: Vec<Scout> = (scouted.max(n + 1)..window_end)
                .filter_map(|p| run.open_scout(&exp.requests[p]))
                .collect();
            scouted = scouted.max(window_end);
            while !slots.is_empty() {
                slots.retain_mut(|s| run.advance_scout(s));
            }
            staging_ns += ns_since(ts);
        }
        let mutated = run.run_walk(req);
        if mutated {
            // The mutation dropped every prefetch stage; whatever was
            // scouted ahead was built on pre-mutation state. Re-open
            // the window from post-mutation state next iteration.
            scouted = 0;
        }
        if let Some(p) = &cfg.obs.progress {
            p.fetch_add(1, Ordering::Relaxed);
        }
        if (n as u64 + 1).is_multiple_of(HOT_GC_WALKS) {
            run.gc_hot();
        }
    }
    let wall_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if let Some(s) = &run.sink {
        s.borrow_mut().flush();
    }

    run.stats.index_blocks = run.trees.iter().map(|t| t.total_blocks()).sum();
    let max_depth = run.trees.iter().map(|t| t.depth()).max().unwrap_or(1);
    let occupancy_by_level = run
        .cache
        .as_ref()
        .map(|b| b.cache.occupancy_by_level(max_depth))
        .unwrap_or_default();
    let band_history = run
        .cache
        .as_ref()
        .and_then(|b| b.tuners.as_ref())
        .map(|ts| ts.iter().map(|t| t.history().to_vec()).collect())
        .unwrap_or_default();

    let mut native = NativeMetrics {
        wall_ns,
        walks: run.stats.walks,
        ix_probe_ns: run.phase.ix_probe_ns,
        node_scan_ns: run.phase.node_scan_ns,
        mutation_ns: run.phase.mutation_ns,
        staging_ns,
        ..NativeMetrics::default()
    };
    for t in &run.trees {
        let fs = t.file_stats();
        let ts = t.io_stats();
        native.page_reads += fs.pages_read;
        native.page_writes += fs.pages_written;
        native.hot_hits += ts.hot_hits;
        native.cold_reads += ts.cold_reads;
        native.staged_hits += ts.staged_hits;
        native.prefetched += ts.prefetched;
        native.node_writes += ts.node_writes;
        native.pages += t.page_count();
        native.free_pages += t.free_pages();
        native.page_read_ns += ts.page_read_ns;
        native.decode_ns += ts.decode_ns;
    }

    RunReport {
        design: spec.label().to_string(),
        stats: run.stats,
        occupancy_by_level,
        band_history,
        native: Some(native),
    }
}

/// Runs one design natively over the experiment, sharding the request
/// stream with the same grain/prefix semantics as the simulator's
/// [`crate::runner::run_design`] — so `run(shards=1) == run(shards=k)`
/// holds trivially (shards execute sequentially here; each is already a
/// pure function of its chunk + prefix).
///
/// # Example: the MLP walk scheduler
///
/// `RunConfig::with_mlp_width(n)` turns on the architect/scout pipeline
/// (see the module docs). Semantic outcomes are bit-identical at every
/// width — scouts only prefetch — so the two runs below must agree on
/// all of [`RunStats`] while the pipelined one attributes node reads to
/// the prefetch stage:
///
/// ```
/// use metal_core::ixcache::IxConfig;
/// use metal_core::models::{DesignSpec, Experiment};
/// use metal_core::native::run_native_design;
/// use metal_core::request::WalkRequest;
/// use metal_core::runner::RunConfig;
/// use metal_index::bptree::BPlusTree;
/// use metal_sim::types::Addr;
///
/// let keys: Vec<u64> = (0..2000).map(|k| k * 2).collect();
/// let tree = BPlusTree::bulk_load(&keys, 8, Addr::new(0), 16);
/// let requests: Vec<WalkRequest> =
///     (0..300u64).map(|i| WalkRequest::lookup((i * 13) % 4000)).collect();
/// let exp = Experiment::single(&tree, &requests);
/// let spec = DesignSpec::MetalIx { ix: IxConfig::kb64() };
///
/// let serial = run_native_design(&spec, &exp, &RunConfig::default());
/// let piped = run_native_design(&spec, &exp, &RunConfig::default().with_mlp_width(4));
/// assert_eq!(serial.stats, piped.stats, "width never changes semantics");
/// let m = piped.native.unwrap();
/// assert!(m.prefetched > 0, "scouts ran");
/// assert!(m.staged_hits > 0, "the architect found staged nodes");
/// ```
pub fn run_native_design(spec: &DesignSpec, exp: &Experiment<'_>, cfg: &RunConfig) -> RunReport {
    assert!(
        supports_native(spec),
        "design '{}' is not supported by the native backend",
        spec.label()
    );
    let bounds = shard_bounds(exp.requests.len(), cfg.shard_walks);
    let mut reports = Vec::with_capacity(bounds.len());
    for (i, range) in bounds.iter().enumerate() {
        let shard_exp = exp.slice(range.clone());
        let prefix = &exp.requests[..range.start];
        reports.push(run_native_shard(spec, &shard_exp, cfg, i as u64, prefix));
    }
    crate::runner::merge_reports(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::NodeDescriptor;
    use crate::ixcache::IxConfig;
    use crate::runner::run_design;
    use metal_sim::types::{Addr, Key};

    fn tree() -> BPlusTree {
        let keys: Vec<Key> = (0..4000).map(|k| k * 2).collect();
        BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16)
    }

    fn crud_requests(n: usize) -> Vec<WalkRequest> {
        (0..n)
            .map(|i| {
                let key = ((i * 37) % 4000) as Key * 2;
                match i % 10 {
                    0 => WalkRequest::lookup(key + 1).with_op(OpKind::Insert),
                    1 => WalkRequest::lookup(key).with_op(OpKind::Delete),
                    2 => WalkRequest::lookup(key).with_op(OpKind::Update),
                    3 => WalkRequest::lookup(key).with_scan(3),
                    _ => WalkRequest::lookup(key).with_compute(8),
                }
            })
            .collect()
    }

    fn semantic_outcomes(r: &RunReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, Vec<u64>) {
        (
            r.stats.found_walks,
            r.stats.write_walks,
            r.stats.node_splits,
            r.stats.node_merges,
            r.stats.probes,
            r.stats.misses,
            r.stats.inserts,
            r.stats.entries_invalidated,
            r.stats.hit_levels.clone(),
        )
    }

    #[test]
    fn native_matches_sim_on_crud_mix() {
        let t = tree();
        let requests = crud_requests(800);
        let exp = Experiment::single(&t, &requests);
        let cfg = RunConfig::default();
        for spec in [
            DesignSpec::Stream,
            DesignSpec::MetalIx {
                ix: IxConfig::kb64(),
            },
            DesignSpec::Metal {
                ix: IxConfig::kb64(),
                descriptors: vec![Descriptor::Node(NodeDescriptor::leaves())],
                tune: true,
                batch_walks: 100,
            },
        ] {
            let sim = run_design(&spec, &exp, &cfg);
            let native = run_native_design(&spec, &exp, &cfg);
            assert_eq!(
                semantic_outcomes(&sim),
                semantic_outcomes(&native),
                "backend divergence under design '{}'",
                spec.label()
            );
            assert_eq!(sim.stats.dram_node_reads, native.stats.dram_node_reads);
            assert_eq!(sim.stats.levels_skipped, native.stats.levels_skipped);
            assert_eq!(sim.stats.bypasses, native.stats.bypasses);
            assert_eq!(sim.stats.index_blocks, native.stats.index_blocks);
            assert_eq!(sim.occupancy_by_level, native.occupancy_by_level);
            assert_eq!(sim.band_history, native.band_history);
            let m = native.native.expect("native metrics attached");
            assert_eq!(m.walks, 800);
            assert!(m.page_reads > 0, "walks actually touch the page layer");
        }
    }

    #[test]
    fn native_sharding_replays_prefix_writes() {
        let t = tree();
        let requests = crud_requests(600);
        let exp = Experiment::single(&t, &requests);
        let spec = DesignSpec::MetalIx {
            ix: IxConfig::kb64(),
        };
        let whole = run_native_design(&spec, &exp, &RunConfig::default());
        let sharded = run_native_design(&spec, &exp, &RunConfig::default().with_shard_walks(150));
        // Sharded runs start each chunk cold (different outcomes from the
        // unsharded run) but must match the *simulator* sharded the same
        // way — the true invariant.
        let sim_sharded = run_design(&spec, &exp, &RunConfig::default().with_shard_walks(150));
        assert_eq!(semantic_outcomes(&sharded), semantic_outcomes(&sim_sharded));
        assert_eq!(whole.stats.walks, sharded.stats.walks);
    }

    #[test]
    fn hot_map_serves_probe_hits() {
        let t = tree();
        // Heavy reuse of one key: after the cold walk, probes hit and the
        // node pointer resolves from the hot map.
        let requests: Vec<WalkRequest> = (0..200).map(|_| WalkRequest::lookup(100)).collect();
        let exp = Experiment::single(&t, &requests);
        let spec = DesignSpec::MetalIx {
            ix: IxConfig::kb64(),
        };
        let r = run_native_design(&spec, &exp, &RunConfig::default());
        let m = r.native.expect("metrics");
        assert!(
            m.hot_hits > m.cold_reads,
            "reuse must ride the hot fast path: {} hot vs {} cold",
            m.hot_hits,
            m.cold_reads
        );
        assert!(m.walks_per_sec() > 0.0);
    }

    #[test]
    fn mlp_widths_agree_on_every_semantic_outcome() {
        let t = tree();
        let requests = crud_requests(800);
        let exp = Experiment::single(&t, &requests);
        for spec in [
            DesignSpec::Stream,
            DesignSpec::MetalIx {
                ix: IxConfig::kb64(),
            },
            DesignSpec::Metal {
                ix: IxConfig::kb64(),
                descriptors: vec![Descriptor::Node(NodeDescriptor::leaves())],
                tune: true,
                batch_walks: 100,
            },
        ] {
            let serial = run_native_design(&spec, &exp, &RunConfig::default());
            for width in [4usize, 8] {
                let cfg = RunConfig::default().with_mlp_width(width);
                let piped = run_native_design(&spec, &exp, &cfg);
                assert_eq!(
                    serial.stats,
                    piped.stats,
                    "width {width} changed '{}' semantics",
                    spec.label()
                );
                assert_eq!(serial.occupancy_by_level, piped.occupancy_by_level);
                assert_eq!(serial.band_history, piped.band_history);
                // And the simulator at the same width agrees too.
                let sim = run_design(&spec, &exp, &cfg);
                assert_eq!(sim.stats.probes, piped.stats.probes);
                assert_eq!(sim.stats.found_walks, piped.stats.found_walks);
                assert_eq!(sim.stats.node_splits, piped.stats.node_splits);
                assert_eq!(sim.stats.node_merges, piped.stats.node_merges);
            }
        }
    }

    #[test]
    fn width_one_runs_no_scouts_and_matches_serial_io_exactly() {
        let t = tree();
        let requests = crud_requests(400);
        let exp = Experiment::single(&t, &requests);
        let spec = DesignSpec::MetalIx {
            ix: IxConfig::kb64(),
        };
        let a = run_native_design(&spec, &exp, &RunConfig::default());
        let b = run_native_design(&spec, &exp, &RunConfig::default().with_mlp_width(1));
        let (ma, mb) = (a.native.unwrap(), b.native.unwrap());
        // Everything but measured time is byte-identical at width 1 — no
        // scout ever runs, so even measured I/O attribution matches.
        let strip = |m: NativeMetrics| NativeMetrics {
            wall_ns: 0,
            page_read_ns: 0,
            decode_ns: 0,
            ix_probe_ns: 0,
            node_scan_ns: 0,
            mutation_ns: 0,
            staging_ns: 0,
            ..m
        };
        assert_eq!(strip(ma), strip(mb));
        assert_eq!(ma.prefetched, 0);
        assert_eq!(ma.staged_hits, 0);
        assert_eq!(ma.staging_ns, 0, "no scout window at width 1");
        assert!(ma.node_scan_ns > 0, "walks accrued scan time");
        assert!(ma.ix_probe_ns > 0, "probes accrued probe time");
    }

    #[test]
    fn scouts_prefetch_ahead_and_reset_on_mutations() {
        let t = tree();
        // Read-heavy mix with occasional inserts: scouts must both do
        // useful staging and survive the mutation resets.
        let requests: Vec<WalkRequest> = (0..600)
            .map(|i| {
                let key = ((i * 61) % 4000) as Key * 2;
                if i % 97 == 0 {
                    WalkRequest::lookup(key + 1).with_op(OpKind::Insert)
                } else {
                    WalkRequest::lookup(key)
                }
            })
            .collect();
        let exp = Experiment::single(&t, &requests);
        let spec = DesignSpec::Stream;
        let r = run_native_design(&spec, &exp, &RunConfig::default().with_mlp_width(8));
        let m = r.native.unwrap();
        assert!(m.prefetched > 0, "scouts staged cold nodes");
        assert!(
            m.staged_hits > 0,
            "architect walks consumed staged nodes: {m:?}"
        );
        let serial = run_native_design(&spec, &exp, &RunConfig::default());
        assert_eq!(serial.stats, r.stats, "mutation resets kept semantics");
    }

    #[test]
    #[should_panic(expected = "not supported by the native backend")]
    fn unsupported_design_panics_with_context() {
        let t = tree();
        let requests = vec![WalkRequest::lookup(0)];
        let exp = Experiment::single(&t, &requests);
        run_native_design(
            &DesignSpec::Address {
                entries: 64,
                ways: 16,
            },
            &exp,
            &RunConfig::default(),
        );
    }
}
