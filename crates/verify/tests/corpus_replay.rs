//! Corpus replay: every minimized repro the fuzzer ever banked must keep
//! passing. A corpus file is written by `ix_fuzz` when it finds (and
//! shrinks) a divergence; once the underlying bug is fixed the repro is
//! committed and this test pins the fix forever.
//!
//! Runs in the default `cargo test` sweep, in debug mode, so repros that
//! originally manifested as debug-only panics (overflow checks) stay
//! armed.

use metal_obs::Json;
use metal_verify::check::{check_translation, run_scenario};
use metal_verify::native::{check_native_case, NativeCase};
use metal_verify::scenario::Scenario;
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn every_corpus_repro_replays_clean() {
    let mut replayed = 0;
    let entries = std::fs::read_dir(corpus_dir()).expect("corpus directory must exist");
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: bad JSON: {e:?}"));
        match json.get("kind").and_then(Json::as_str) {
            Some("ix") => {
                let s = Scenario::from_json(&json)
                    .unwrap_or_else(|| panic!("{name}: malformed ix scenario"));
                if let Err(d) = run_scenario(&s) {
                    panic!("{name}: regressed: {d}");
                }
                if s.ample {
                    for delta in [1, 1 << 20, u64::MAX / 2] {
                        if let Err(d) = check_translation(&s, delta) {
                            panic!("{name}: translation regressed (delta {delta}): {d}");
                        }
                    }
                }
                replayed += 1;
            }
            Some("native") => {
                let c = NativeCase::from_json(&json)
                    .unwrap_or_else(|| panic!("{name}: malformed native case"));
                if let Err(d) = check_native_case(&c) {
                    panic!("{name}: regressed: {d}");
                }
                replayed += 1;
            }
            kind => panic!("{name}: unknown corpus kind {kind:?}"),
        }
    }
    println!("replayed {replayed} corpus repros");
}
