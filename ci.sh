#!/usr/bin/env bash
# CI entry point: tier-1 verify, the full test suite single-threaded,
# and a sharded-replay smoke test (shards=1 vs shards=4 must emit
# byte-identical figure CSV).
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== full workspace tests (single-threaded) =="
cargo test -q --workspace -- --test-threads=1

echo "== sharded-replay smoke: fig18_speedup, shards 1 vs 4 =="
cargo build --release -p metal-bench --bin fig18_speedup
out1=$(mktemp) && out4=$(mktemp)
trap 'rm -f "$out1" "$out4"' EXIT
t0=$(date +%s%N)
METAL_SHARDS=1 ./target/release/fig18_speedup --scale ci > "$out1"
t1=$(date +%s%N)
METAL_SHARDS=4 ./target/release/fig18_speedup --scale ci > "$out4"
t2=$(date +%s%N)
if ! diff -q "$out1" "$out4" > /dev/null; then
    echo "FAIL: fig18_speedup output differs between shards=1 and shards=4" >&2
    diff "$out1" "$out4" >&2 || true
    exit 1
fi
echo "shards=1: $(( (t1 - t0) / 1000000 )) ms, shards=4: $(( (t2 - t1) / 1000000 )) ms, CSV identical"

echo "== ci.sh: all checks passed =="
