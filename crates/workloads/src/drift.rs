//! `drift_hotspot_v1` — the drifting-hotspot workload with periodic
//! scan storms.
//!
//! A B+tree over a uniform keyspace probed by a stream whose locality
//! is deliberately *non-stationary*: most lookups concentrate in a
//! narrow [`DriftingCluster`] window that jumps to a fresh position at
//! a fixed period, and at a second (longer) period the stream switches
//! into a burst of leaf scans over whatever the hotspot currently is.
//! Between the phase changes the stream is steady, so windowed
//! telemetry shows long flat plateaus punctuated by sharp edges — the
//! exact shape the epoch series, `trace_dump --timeline` and the
//! anomaly watchdogs (hit-rate collapse on a hotspot jump, scan storm
//! on a burst) exist to expose. Whole-run aggregates average all of it
//! away.
//!
//! The generator is a pure function of `scale.seed`, so runs are
//! deterministic and shard-count invariant like every other workload in
//! the suite. It is intentionally *not* part of [`crate::Workload`]'s
//! Table 2 roster: the figure goldens pin that roster, and this
//! workload exists for the telemetry plane, not the paper's tables.

use crate::built::BuiltWorkload;
use crate::dist::DriftingCluster;
use crate::scale::Scale;
use crate::suite::band_for_tree;
use metal_core::descriptor::Descriptor;
use metal_core::request::WalkRequest;
use metal_dsa::tile::DsaSpec;
use metal_index::bptree::BPlusTree;
use metal_sim::rng::SplitRng;
use metal_sim::types::{Addr, Key};

/// Fraction of steady-phase lookups drawn from the hotspot window (the
/// rest are uniform background over the whole keyspace).
const HOT_FRACTION: u64 = 90;

/// Builds the `drift_hotspot_v1` workload.
///
/// The hotspot covers ~1/32 of the keyspace and jumps every 1/8 of the
/// walk budget; every 1/4 of the walk budget a scan storm of 1/32 of
/// the budget replaces lookups with short leaf scans over the hotspot.
pub fn drift_hotspot_v1(scale: Scale) -> BuiltWorkload {
    let spec = DsaSpec::gorgon_analytics();
    let n_keys = scale.keys.max(256);
    let keys: Vec<Key> = (0..n_keys).collect();
    let tree = BPlusTree::bulk_load_with_depth(&keys, scale.depth, Addr::new(0), 64);

    let mut rng = SplitRng::stream(scale.seed, 0xd81f);
    let walks = scale.walks.max(64);
    let width = (n_keys / 32).max(8).min(n_keys);
    let jump_period = (walks / 8).max(16);
    let storm_period = (walks / 4).max(32);
    let storm_len = (walks / 32).max(8);
    let mut hotspot = DriftingCluster::new(n_keys, width, jump_period);

    let mut requests = Vec::with_capacity(walks as usize);
    for i in 0..walks {
        let key = hotspot.sample(&mut rng);
        let in_storm = i % storm_period < storm_len && i >= storm_period;
        let req = if in_storm {
            // Storm phase: leaf scans sweep the hotspot, flushing the
            // cache the way an analytics range query does.
            WalkRequest::lookup(key).with_scan(rng.gen_range(2..6u64) as u32)
        } else if rng.gen_range(0..100u64) < HOT_FRACTION {
            WalkRequest::lookup(key).with_compute(spec.ops_per_compute)
        } else {
            // Background: uniform over the whole keyspace.
            WalkRequest::lookup(rng.gen_range(0..n_keys)).with_compute(spec.ops_per_compute)
        };
        requests.push(req);
    }

    let band = band_for_tree(&tree, 1024);
    BuiltWorkload {
        name: "drift_hotspot_v1",
        indexes: vec![Box::new(tree)],
        requests,
        descriptors: vec![Descriptor::Level(band)],
        batch_walks: scale.batch_walks(),
        tiles: spec.tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = drift_hotspot_v1(Scale::ci());
        let b = drift_hotspot_v1(Scale::ci());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.name, "drift_hotspot_v1");
        assert_eq!(a.requests.len() as u64, Scale::ci().walks.max(64));
    }

    #[test]
    fn storms_appear_periodically_and_only_then_scan_heavily() {
        let scale = Scale::ci();
        let built = drift_hotspot_v1(scale);
        let walks = scale.walks.max(64);
        let storm_period = (walks / 4).max(32);
        let storm_len = (walks / 32).max(8);
        let mut storm_scans = 0u64;
        let mut storm_total = 0u64;
        let mut steady_scans = 0u64;
        let mut steady_total = 0u64;
        for (i, r) in built.requests.iter().enumerate() {
            let i = i as u64;
            let in_storm = i % storm_period < storm_len && i >= storm_period;
            if in_storm {
                storm_total += 1;
                storm_scans += u64::from(r.scan_leaves > 0);
            } else {
                steady_total += 1;
                steady_scans += u64::from(r.scan_leaves > 0);
            }
        }
        assert!(storm_total > 0, "ci scale must include at least one storm");
        assert_eq!(storm_scans, storm_total, "storm phases are all scans");
        assert_eq!(steady_scans, 0, "steady phases never scan");
        assert!(steady_total > storm_total, "storms are the minority phase");
    }

    #[test]
    fn steady_phase_concentrates_in_the_hotspot() {
        let scale = Scale::ci();
        let built = drift_hotspot_v1(scale);
        let n_keys = scale.keys.max(256);
        let width = (n_keys / 32).max(8);
        // With 90% of steady lookups inside a width-wide window, the
        // whole-run distinct-key count stays far below uniform's.
        let distinct: std::collections::BTreeSet<Key> =
            built.requests.iter().map(|r| r.key).collect();
        assert!(
            (distinct.len() as u64) < n_keys / 2,
            "hotspot workload touched {} of {} keys",
            distinct.len(),
            n_keys
        );
        assert!(width < n_keys, "hotspot is a strict subset of the space");
    }
}
