//! Scenario shrinking: reduce a failing case to a short, readable repro.
//!
//! Classic delta-debugging over the op list (drop exponentially smaller
//! chunks while the scenario still fails), followed by value-level
//! simplification (shrink keys toward the scenario's base, bytes toward
//! 64, lives toward 0, geometry toward minimal). Every candidate is
//! re-run under the same predicate, so the output is guaranteed to still
//! diverge; a bounded pass count keeps worst-case time predictable.

use crate::scenario::{Op, Scenario};

/// Re-establishes the invariants a candidate must keep for the checks to
/// stay sound: `ample` scenarios promise "no eviction is possible", so
/// after any mutation their geometry is resized back to the single-set,
/// above-worst-case shape. Tight candidates only need basic sanity.
fn normalize(c: &mut Scenario) {
    if c.ample {
        c.entries = Scenario::max_physical_entries(&c.ops) + 2;
        c.ways = c.entries;
    } else {
        c.entries = c.entries.max(2);
        c.ways = c.ways.clamp(1, c.entries);
    }
}

/// Returns the smallest still-failing scenario `fails` accepts, starting
/// from `s` (which must fail).
pub fn shrink_scenario<F>(s: &Scenario, fails: F) -> Scenario
where
    F: Fn(&Scenario) -> bool,
{
    debug_assert!(fails(s), "shrink needs a failing input");
    let mut best = s.clone();

    // Pass 1: ddmin over ops — remove chunks, halving the granularity.
    let mut chunk = best.ops.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut removed_any = false;
        let mut start = 0;
        while start < best.ops.len() {
            let mut candidate = best.clone();
            let end = (start + chunk).min(candidate.ops.len());
            candidate.ops.drain(start..end);
            normalize(&mut candidate);
            if !candidate.ops.is_empty() && fails(&candidate) {
                best = candidate;
                removed_any = true;
                // Same `start` now points at fresh ops.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Pass 2: value simplification, to fixpoint (bounded).
    for _ in 0..8 {
        let mut progressed = false;

        // Geometry: fewer entries / ways / bits, zero wide partition.
        for f in [
            (|c: &mut Scenario| c.entries /= 2) as fn(&mut Scenario),
            |c| c.ways = 1,
            |c| c.ways = c.entries,
            |c| c.key_block_bits /= 2,
            |c| c.wide_pct = 0,
        ] {
            let mut candidate = best.clone();
            f(&mut candidate);
            normalize(&mut candidate);
            if candidate != best && fails(&candidate) {
                best = candidate;
                progressed = true;
            }
        }

        // Ops: simplify one field at a time.
        for i in 0..best.ops.len() {
            let variants: Vec<Op> = match best.ops[i] {
                Op::Insert {
                    index,
                    node,
                    lo,
                    hi,
                    level,
                    bytes,
                    life,
                } => vec![
                    Op::Insert {
                        index,
                        node,
                        lo,
                        hi,
                        level,
                        bytes: 64,
                        life,
                    },
                    Op::Insert {
                        index,
                        node,
                        lo,
                        hi,
                        level,
                        bytes,
                        life: 0,
                    },
                    Op::Insert {
                        index,
                        node,
                        lo,
                        hi,
                        level: 0,
                        bytes,
                        life,
                    },
                    Op::Insert {
                        index,
                        node: 1,
                        lo,
                        hi,
                        level,
                        bytes,
                        life,
                    },
                    Op::Insert {
                        index: 0,
                        node,
                        lo,
                        hi,
                        level,
                        bytes,
                        life,
                    },
                    Op::Insert {
                        index,
                        node,
                        lo,
                        hi: lo,
                        level,
                        bytes,
                        life,
                    },
                    Op::Insert {
                        index,
                        node,
                        lo: hi,
                        hi,
                        level,
                        bytes,
                        life,
                    },
                    Op::Insert {
                        index,
                        node,
                        lo: lo / 2,
                        hi: hi / 2,
                        level,
                        bytes,
                        life,
                    },
                ],
                Op::Probe { index, key } => vec![
                    Op::Probe { index: 0, key },
                    Op::Probe {
                        index,
                        key: key / 2,
                    },
                    Op::Probe { index, key: 0 },
                ],
                Op::Invalidate {
                    index,
                    level,
                    lo,
                    hi,
                } => vec![
                    Op::Invalidate {
                        index: 0,
                        level,
                        lo,
                        hi,
                    },
                    Op::Invalidate {
                        index,
                        level: crate::scenario::ALL_LEVELS,
                        lo,
                        hi,
                    },
                    Op::Invalidate {
                        index,
                        level,
                        lo,
                        hi: lo,
                    },
                    Op::Invalidate {
                        index,
                        level,
                        lo: lo / 2,
                        hi: hi / 2,
                    },
                ],
                Op::Flush => vec![],
            };
            for v in variants {
                if v == best.ops[i] {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.ops[i] = v;
                normalize(&mut candidate);
                if fails(&candidate) {
                    best = candidate;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::gen_scenario;

    #[test]
    fn shrinks_to_single_triggering_op() {
        // Predicate: "contains an insert with bytes > 500" — a stand-in
        // for a real divergence tied to one op.
        let fails = |s: &Scenario| {
            s.ops
                .iter()
                .any(|op| matches!(op, Op::Insert { bytes, .. } if *bytes > 500))
        };
        for seed in 0..200 {
            let s = gen_scenario(seed, false);
            if !fails(&s) {
                continue;
            }
            let small = shrink_scenario(&s, fails);
            assert_eq!(small.ops.len(), 1, "seed {seed}: {:?}", small.ops);
            assert!(fails(&small));
            return; // one generated witness is enough
        }
        panic!("no generated scenario contained a large insert");
    }

    #[test]
    fn shrink_preserves_failure() {
        let fails = |s: &Scenario| {
            s.ops
                .iter()
                .filter(|o| matches!(o, Op::Probe { .. }))
                .count()
                >= 3
        };
        for seed in 0..50 {
            let s = gen_scenario(seed, true);
            if fails(&s) {
                let small = shrink_scenario(&s, fails);
                assert!(fails(&small));
                assert!(small.ops.len() <= s.ops.len());
                return;
            }
        }
        panic!("no witness");
    }
}
