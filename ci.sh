#!/usr/bin/env bash
# CI entry point: lints, tier-1 verify, the full test suite
# single-threaded, a sharded-replay smoke test (worker count must never
# change the figure CSV, with and without an explicit logical-shard
# grain), a telemetry smoke test (the trace must parse and agree with
# the run manifest), a forensics gate (the `analyze` report must
# pass its schema/conservation validation on a real fig15 trace), a
# time-resolved telemetry gate (per-epoch window sums must conserve and
# the series must be worker-count invariant), and a native-execution
# gate (sim and native backends must agree on every semantic outcome,
# the measured-telemetry path must analyze clean, and a corrupted block
# file must die with a contextful error), an MLP gate (the fig_mlp
# sweep must match its golden and --mlp-width 1 must be byte-identical
# to the serial engine), a cycle-accounting gate (the fig_breakdown
# sweep must match its golden, a traced run must pass the breakdown
# conservation rows in `analyze --validate`, and a sed-forged stall
# component must fail naming the broken identity), and a doc-link check
# (every binary, flag and results/ file named in the docs must exist).
set -euo pipefail
cd "$(dirname "$0")"

echo "== lint: cargo fmt --check =="
cargo fmt --all --check

echo "== lint: cargo clippy -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== docs: cargo doc --no-deps (rustdoc warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== tier-1: cargo build --release =="
cargo build --release

# The root-package tests are covered by the workspace run below; build
# test targets first so the timed run is compile-free.
echo "== full workspace tests (single-threaded) =="
cargo test -q --workspace --no-run
cargo test -q --workspace -- --test-threads=1

echo "== sharded-replay smoke: fig18_speedup, shards 1 vs 4 =="
cargo build --release -p metal-bench --bin fig18_speedup
out1=$(mktemp) && out4=$(mktemp)
trap 'rm -f "$out1" "$out4"' EXIT
# Default (unbounded) grain: the serial single-engine methodology.
t0=$(date +%s%N)
./target/release/fig18_speedup --scale ci --shards 1 > "$out1"
t1=$(date +%s%N)
./target/release/fig18_speedup --scale ci --shards 4 > "$out4"
t2=$(date +%s%N)
if ! diff -q "$out1" "$out4" > /dev/null; then
    echo "FAIL: fig18_speedup (default grain) differs between shards=1 and shards=4" >&2
    diff "$out1" "$out4" >&2 || true
    exit 1
fi
echo "default grain: shards=1 $(( (t1 - t0) / 1000000 )) ms, shards=4 $(( (t2 - t1) / 1000000 )) ms, CSV identical"
# Explicit logical sharding (partitioned-accelerator semantics): still
# worker-count invariant.
./target/release/fig18_speedup --scale ci --shards 1 --shard-walks 512 > "$out1"
./target/release/fig18_speedup --scale ci --shards 4 --shard-walks 512 > "$out4"
if ! diff -q "$out1" "$out4" > /dev/null; then
    echo "FAIL: fig18_speedup (--shard-walks 512) differs between shards=1 and shards=4" >&2
    diff "$out1" "$out4" >&2 || true
    exit 1
fi
echo "shard-walks=512: CSV identical across worker counts"

echo "== telemetry smoke: fig20_breakdown --trace-out / --metrics-out =="
cargo build --release -p metal-bench --bin fig20_breakdown --bin trace_dump
tdir=$(mktemp -d)
trap 'rm -f "$out1" "$out4"; rm -rf "$tdir"' EXIT
# A traced run must produce the same CSV as an untraced one…
./target/release/fig20_breakdown --scale ci > "$tdir/plain.csv"
./target/release/fig20_breakdown --scale ci \
    --trace-out "$tdir/trace.jsonl" --metrics-out "$tdir/manifest.json" \
    > "$tdir/traced.csv"
if ! diff -q "$tdir/plain.csv" "$tdir/traced.csv" > /dev/null; then
    echo "FAIL: --trace-out changed the figure CSV" >&2
    diff "$tdir/plain.csv" "$tdir/traced.csv" >&2 || true
    exit 1
fi
echo "tracing does not perturb the CSV"
# …every trace line must parse, and the per-level hit counts derived
# from raw probe events must match the manifest's statistics exactly.
./target/release/trace_dump "$tdir/trace.jsonl" \
    --check-hits "$tdir/manifest.json" > "$tdir/dump.txt"
grep -q "check-hits: per-level hit counts match" "$tdir/dump.txt"
echo "trace parses; trace-derived hit levels match the manifest"

echo "== telemetry cross-check: fig15 + fig24 traces vs manifests =="
cargo build --release -p metal-bench --bin fig15_miss_rate --bin fig24_design_sweep
for fig in fig15_miss_rate fig24_design_sweep; do
    ./target/release/"$fig" --scale ci \
        --trace-out "$tdir/$fig.jsonl" --metrics-out "$tdir/$fig.manifest.json" \
        > /dev/null
    ./target/release/trace_dump "$tdir/$fig.jsonl" \
        --check-hits "$tdir/$fig.manifest.json" > "$tdir/$fig.dump.txt"
    grep -q "check-hits: per-level hit counts match" "$tdir/$fig.dump.txt"
    echo "$fig: trace-derived hit levels match the manifest"
done
# Negative control: a corrupted trace (one forged probe hit) must make
# trace_dump exit nonzero, or the checks above prove nothing.
cp "$tdir/fig15_miss_rate.jsonl" "$tdir/forged.jsonl"
printf '%s\n' '{"ev":"ix_probe","run":"scan","design":"metal-ix","shard":0,"index":0,"set":0,"level":0,"hit":true,"scan":false,"short_circuit":1}' \
    >> "$tdir/forged.jsonl"
if ./target/release/trace_dump "$tdir/forged.jsonl" \
    --check-hits "$tdir/fig15_miss_rate.manifest.json" > "$tdir/forged.txt"; then
    echo "FAIL: trace_dump exited 0 on a forged trace/manifest mismatch" >&2
    exit 1
fi
grep -q "MISMATCH" "$tdir/forged.txt"
echo "negative control: forged trace fails check-hits with nonzero exit"
# Second negative control: a forged admission event leaves the hit counts
# intact but must trip the reason-counter diff re-derived from the trace.
cp "$tdir/fig15_miss_rate.jsonl" "$tdir/forged_reason.jsonl"
printf '%s\n' '{"ev":"insert","run":"scan","design":"metal-ix","shard":0,"index":0,"level":0,"set":0,"life":64,"reason":"node-level"}' \
    >> "$tdir/forged_reason.jsonl"
if ./target/release/trace_dump "$tdir/forged_reason.jsonl" \
    --check-hits "$tdir/fig15_miss_rate.manifest.json" > "$tdir/forged_reason.txt"; then
    echo "FAIL: trace_dump exited 0 on a forged insert-reason counter" >&2
    exit 1
fi
grep -q "MISMATCH inserts_by_reason" "$tdir/forged_reason.txt"
echo "negative control: forged reason counter fails check-reasons with nonzero exit"

echo "== forensics: analyze the fig15 trace + schema gate =="
# The offline analyzer must digest the ci-scale fig15 trace into a
# schema-valid, conservation-checked ANALYSIS.json and an HTML report.
cargo build --release -p metal-bench --bin analyze
./target/release/analyze "$tdir/fig15_miss_rate.jsonl" \
    --manifest "$tdir/fig15_miss_rate.manifest.json" \
    --out "$tdir/ANALYSIS.json" --html "$tdir/ANALYSIS.html" > "$tdir/analyze.txt"
grep -q "analyze: wrote" "$tdir/analyze.txt"
./target/release/analyze --validate "$tdir/ANALYSIS.json"
grep -q "<svg" "$tdir/ANALYSIS.html"
echo "fig15 trace analyzed; ANALYSIS.json passes the schema/conservation gate"

echo "== examples: all build, quickstart runs, run_figures.sh --dry-run =="
# The examples are documentation that must keep compiling; quickstart is
# cheap enough to actually execute. The figure driver's dry-run checks
# every binary it references still builds, without touching results/.
cargo build --release --examples
./target/release/examples/quickstart > /dev/null
./run_figures.sh --dry-run > "$tdir/dryrun.txt"
grep -q "ALL_DONE" "$tdir/dryrun.txt"
echo "examples compile and quickstart runs; run_figures.sh --dry-run reaches ALL_DONE"

echo "== differential verification: fuzz smoke + figure cross-check =="
# Debug build on purpose: overflow checks armed, and 600 cases take
# seconds. Zero divergences required; failures land minimized repros in
# crates/verify/corpus/ (replayed by the corpus_replay test above).
cargo build -p metal-verify --bin ix_fuzz
./target/debug/ix_fuzz --cases 600 --seed 42
# Mutation smoke: the CRUD swarm (inserts, deletes, range invalidations,
# cross-design write runs) through the mutation-aware oracle — the
# coherence gate for the write path. Fixed seed, overflow checks armed.
./target/debug/ix_fuzz --cases 600 --seed 43 --mutate
echo "mutation fuzz smoke: 600 CRUD cases, zero divergences"
# Native-backend swarm: seeded CRUD walk mixes run end-to-end through
# the paged native executor and every semantic counter is diffed
# against the (oracle-verified) simulator; failures shrink to
# crates/verify/corpus/ like the IX-cache swarms.
./target/debug/ix_fuzz --cases 600 --seed 44 --backend native
echo "native fuzz smoke: 600 end-to-end cases, zero sim/native divergences"
# The --verify flag cross-checks a subsample of every figure workload
# against the reference accounting model, without touching the CSV.
./target/release/fig15_miss_rate --scale ci --verify > "$tdir/verify.csv" 2> /dev/null
./target/release/fig15_miss_rate --scale ci > "$tdir/plain15.csv" 2> /dev/null
if ! diff -q "$tdir/plain15.csv" "$tdir/verify.csv" > /dev/null; then
    echo "FAIL: --verify changed the figure CSV" >&2
    exit 1
fi
echo "--verify passes and leaves the CSV byte-identical"

echo "== mutation sweep: write-ratio invariants + forged-stale-hit control =="
# The CRUD sweep must keep result/structural counters design-invariant
# (the binary aborts otherwise) and its trace must reconcile with the
# manifest exactly, invalidations included.
cargo build --release -p metal-bench --bin fig_write_sweep
./target/release/fig_write_sweep --scale ci --write-ratio 25 \
    --trace-out "$tdir/wsweep.jsonl" --metrics-out "$tdir/wsweep.manifest.json" \
    > "$tdir/wsweep.csv"
./target/release/trace_dump "$tdir/wsweep.jsonl" \
    --check-hits "$tdir/wsweep.manifest.json" > "$tdir/wsweep.dump.txt"
grep -q "check-hits: per-level hit counts match" "$tdir/wsweep.dump.txt"
echo "mutated run: trace-derived hit levels match the manifest"
# Negative control: hand-corrupt the mutated trace by forging one probe
# miss into a stale hit. check-hits must fail, or the reconciliation
# above proves nothing about the invalidation protocol.
sed '0,/"hit":false/s//"hit":true/' "$tdir/wsweep.jsonl" > "$tdir/wsweep_forged.jsonl"
if ./target/release/trace_dump "$tdir/wsweep_forged.jsonl" \
    --check-hits "$tdir/wsweep.manifest.json" > "$tdir/wsweep_forged.txt"; then
    echo "FAIL: trace_dump exited 0 on a forged stale hit in a mutated trace" >&2
    exit 1
fi
grep -q "MISMATCH" "$tdir/wsweep_forged.txt"
echo "negative control: forged stale hit fails check-hits with nonzero exit"

echo "== time-resolved telemetry: window conservation + shard invariance =="
# Epoch-windowed series (--epoch): per-window counters must sum exactly
# to the whole-run aggregates (analyze --validate enforces the
# conservation), the series must be byte-identical across worker
# counts, and windowing must not perturb the figure CSV.
./target/release/fig15_miss_rate --scale ci --shards 1 --epoch walks:512 \
    --analyze-out "$tdir/A_series.json" --series-out "$tdir/S1.json" \
    > "$tdir/f15_series1.csv" 2> /dev/null
./target/release/fig15_miss_rate --scale ci --shards 4 --epoch walks:512 \
    --series-out "$tdir/S4.json" > "$tdir/f15_series4.csv" 2> /dev/null
if ! diff -q "$tdir/plain15.csv" "$tdir/f15_series1.csv" > /dev/null; then
    echo "FAIL: --epoch/--series-out changed the figure CSV" >&2
    diff "$tdir/plain15.csv" "$tdir/f15_series1.csv" >&2 || true
    exit 1
fi
echo "windowed telemetry does not perturb the CSV"
if ! diff -q "$tdir/S1.json" "$tdir/S4.json" > /dev/null; then
    echo "FAIL: telemetry series differs between shards=1 and shards=4" >&2
    diff "$tdir/S1.json" "$tdir/S4.json" >&2 || true
    exit 1
fi
echo "series byte-identical across worker counts"
./target/release/analyze --validate "$tdir/A_series.json"
echo "window sums conserve against whole-run aggregates"
# Negative control: perturb one per-window counter ("walks" appears
# only inside series windows; whole-run aggregates key on "walk_end")
# and the conservation gate must go red, or it proves nothing.
sed '0,/"walks":[0-9]*/s//"walks":9999999/' "$tdir/A_series.json" \
    > "$tdir/A_forged.json"
if ./target/release/analyze --validate "$tdir/A_forged.json" 2> /dev/null; then
    echo "FAIL: analyze --validate passed a forged window counter" >&2
    exit 1
fi
echo "negative control: forged window counter fails validation with nonzero exit"

echo "== native execution: backend equivalence + out-of-core gate =="
# fig_native runs every native-capable design through both backends;
# the ci-scale CSV is pinned to a committed golden and --check
# re-verifies sim/native equivalence row pair by row pair.
cargo build --release -p metal-bench --bin fig_native
./target/release/fig_native --scale ci > "$tdir/native.csv" 2> /dev/null
if ! grep -v '^#' "$tdir/native.csv" | diff - tests/goldens/fig_native_ci.csv; then
    echo "FAIL: fig_native ci CSV drifted from tests/goldens/fig_native_ci.csv" >&2
    exit 1
fi
./target/release/fig_native --check "$tdir/native.csv" > /dev/null
echo "fig_native matches the golden; --check confirms backend equivalence"
# Negative control: forge one native outcome cell (found 4000 -> 3999);
# --check must exit nonzero naming the divergent column, or the
# equivalence gate above proves nothing.
sed 's/^where,stream,native,4000,4000,/where,stream,native,4000,3999,/' \
    "$tdir/native.csv" > "$tdir/native_forged.csv"
if ./target/release/fig_native --check "$tdir/native_forged.csv" \
    > /dev/null 2> "$tdir/native_forged.txt"; then
    echo "FAIL: fig_native --check exited 0 on a forged native outcome" >&2
    exit 1
fi
grep -q "BACKEND DIVERGENCE where/stream: found" "$tdir/native_forged.txt"
echo "negative control: forged native found-count fails --check with nonzero exit"
# Measured telemetry: a traced native run must pass the same
# schema/conservation gate as the simulator traces, and the HTML report
# must carry the measured-vs-modeled table.
./target/release/fig_native --scale ci \
    --trace-out "$tdir/native.jsonl" --metrics-out "$tdir/native.manifest.json" \
    > /dev/null 2> /dev/null
./target/release/analyze "$tdir/native.jsonl" \
    --manifest "$tdir/native.manifest.json" \
    --out "$tdir/NATIVE.json" --html "$tdir/NATIVE.html" > /dev/null
./target/release/analyze --validate "$tdir/NATIVE.json"
grep -q "Measured vs modeled" "$tdir/NATIVE.html"
echo "native trace passes the conservation gate; HTML has the measured table"
# Out-of-core round trip: persist the trees as block files, reopen and
# re-walk them, then corrupt one page — the reload must die with a
# contextful error and exit 2 (usage/IO), not a panic or a wrong answer.
./target/release/fig_native --scale ci --store "$tdir/blocks" > /dev/null 2> /dev/null
./target/release/fig_native --scale ci --load "$tdir/blocks" > /dev/null 2> /dev/null
echo "block files persist and reopen; re-walks agree with the in-memory build"
blk=$(ls "$tdir"/blocks/*.blk | head -1)
printf 'XXXXXXXX' | dd of="$blk" bs=1 seek=4096 conv=notrunc 2> /dev/null
set +e
./target/release/fig_native --scale ci --load "$tdir/blocks" \
    > /dev/null 2> "$tdir/load_err.txt"
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
    echo "FAIL: corrupted block file should exit 2 (usage/IO), got $rc" >&2
    cat "$tdir/load_err.txt" >&2
    exit 1
fi
grep -q "error: --load .*corrupted" "$tdir/load_err.txt"
echo "negative control: corrupted page fails --load with exit 2 and a contextful error"

echo "== MLP window: fig_mlp golden + width-1 identity =="
# fig_mlp sweeps --mlp-width 1/2/4/8 through both backends; the modeled
# CSV on stdout must match its pinned golden (measured walks/sec stay on
# stderr), and the fig_mlp_golden test additionally pins shard
# invariance of the same rows.
cargo build --release -p metal-bench --bin fig_mlp
./target/release/fig_mlp --scale ci > "$tdir/mlp.csv" 2> /dev/null
if ! grep -v '^#' "$tdir/mlp.csv" | diff - tests/goldens/fig_mlp_ci.csv; then
    echo "FAIL: fig_mlp ci CSV drifted from tests/goldens/fig_mlp_ci.csv" >&2
    exit 1
fi
echo "fig_mlp matches the golden"
# --mlp-width 1 must be the serial pre-MLP engine bit for bit: an
# explicit width-1 run of a figure binary is byte-identical to a plain
# one.
./target/release/fig18_speedup --scale ci > "$tdir/f18_plain.csv" 2> /dev/null
./target/release/fig18_speedup --scale ci --mlp-width 1 > "$tdir/f18_w1.csv" 2> /dev/null
if ! diff -q "$tdir/f18_plain.csv" "$tdir/f18_w1.csv" > /dev/null; then
    echo "FAIL: --mlp-width 1 changed the fig18 CSV" >&2
    diff "$tdir/f18_plain.csv" "$tdir/f18_w1.csv" >&2 || true
    exit 1
fi
echo "--mlp-width 1 leaves the figure CSV byte-identical"

echo "== cycle accounting: fig_breakdown golden + conservation forge =="
# fig_breakdown decomposes every simulated cycle into the five
# attribution components (ix_probe/compute/queue/stall/hidden); the
# ci-scale CSV is pinned to a golden and the binary itself re-checks
# the partition identity on every row before printing it.
cargo build --release -p metal-bench --bin fig_breakdown
./target/release/fig_breakdown --scale ci > "$tdir/breakdown.csv" 2> /dev/null
if ! grep -v '^#' "$tdir/breakdown.csv" | diff - tests/goldens/fig_breakdown_ci.csv; then
    echo "FAIL: fig_breakdown ci CSV drifted from tests/goldens/fig_breakdown_ci.csv" >&2
    exit 1
fi
echo "fig_breakdown matches the golden"
# A traced, windowed run must leave the CSV byte-identical (telemetry
# stays observe-only) and produce an ANALYSIS.json whose breakdown
# sections pass the conservation rows: components sum to the walk
# latencies, the busiest lane reconciles with the exec horizon, and the
# per-epoch cycle columns sum to the section totals.
./target/release/fig_breakdown --scale ci --epoch walks:512 \
    --trace-out "$tdir/bkdn.jsonl" --metrics-out "$tdir/bkdn.manifest.json" \
    > "$tdir/breakdown_traced.csv" 2> /dev/null
if ! diff -q "$tdir/breakdown.csv" "$tdir/breakdown_traced.csv" > /dev/null; then
    echo "FAIL: tracing changed the fig_breakdown CSV" >&2
    diff "$tdir/breakdown.csv" "$tdir/breakdown_traced.csv" >&2 || true
    exit 1
fi
echo "tracing does not perturb the breakdown CSV"
./target/release/analyze "$tdir/bkdn.jsonl" \
    --manifest "$tdir/bkdn.manifest.json" --out "$tdir/BKDN.json" > /dev/null
./target/release/analyze --validate "$tdir/BKDN.json"
grep -q '"schema":"metal-breakdown-v1"' "$tdir/BKDN.json"
echo "breakdown conservation rows validate on a traced run"
# The offline reducer must render the same attribution from raw events.
./target/release/trace_dump "$tdir/bkdn.jsonl" --breakdown > "$tdir/bkdn.txt"
grep -q "cycles attributed" "$tdir/bkdn.txt"
echo "trace_dump --breakdown renders the attribution table"
# Negative control: inflate the first design's stall component; the
# validator must go red naming the broken partition identity, or the
# conservation rows above prove nothing.
sed '0,/"stall":{"cycles":[0-9]*/s//"stall":{"cycles":99999999/' "$tdir/BKDN.json" \
    > "$tdir/BKDN_forged.json"
if ./target/release/analyze --validate "$tdir/BKDN_forged.json" \
    2> "$tdir/bkdn_forged.txt"; then
    echo "FAIL: analyze --validate passed a forged stall component" >&2
    exit 1
fi
grep -q "components sum to" "$tdir/bkdn_forged.txt"
echo "negative control: inflated stall cycles fail validation naming the identity"

echo "== docs: link/flag/binary existence check =="
# Grep-based drift gate over README.md, DESIGN.md and ARCHITECTURE.md:
# every binary-shaped name, CLI flag and results/ file a doc mentions
# must exist somewhere in the tree (generated results/ files count when
# run_figures.sh produces them), so the docs cannot silently rot as
# binaries and flags are renamed.
docs="README.md DESIGN.md ARCHITECTURE.md"
docfail=0
# Binary-shaped identifiers (fig*/table*/abl_* plus the named tools):
# each must be a bin target, a pinned golden, or a real identifier.
for name in $(grep -ohE '\b(fig|table|abl)[a-z0-9]*_[a-z0-9_]+\b' $docs \
              | sort -u) analyze bench_suite trace_dump ix_fuzz; do
    if ls crates/*/src/bin/"$name".rs > /dev/null 2>&1; then continue; fi
    if [ -e "tests/goldens/$name.csv" ]; then continue; fi
    if grep -rqF "$name" crates/ tests/ ./*.sh; then continue; fi
    echo "FAIL: docs name '$name' but nothing in the tree defines it" >&2
    docfail=1
done
# CLI flags: every --flag a doc names must appear in the source or a
# script (substring match: catches renamed, removed and typo'd flags).
for flag in $(grep -ohE '\-\-[a-z][a-z-]+' $docs | sort -u); do
    if grep -rqF -- "$flag" crates/ ./*.sh; then continue; fi
    echo "FAIL: docs name flag '$flag' but no source or script knows it" >&2
    docfail=1
done
# results/ files: committed, or generated by run_figures.sh.
for f in $(grep -ohE 'results/[A-Za-z0-9_.]+' $docs | sort -u); do
    if [ -e "$f" ]; then continue; fi
    if grep -qF "$(basename "$f")" run_figures.sh; then continue; fi
    echo "FAIL: docs name '$f' but it is neither committed nor generated" >&2
    docfail=1
done
[ "$docfail" -eq 0 ]
echo "doc-link check: every named binary, flag and results/ file exists"

echo "== bench smoke: bench_suite schema + regression gate =="
# Runs the microbenchmark suite at ci scale (min-of-3 timing),
# validates the emitted BENCH JSON against the metal-bench-suite/1
# schema, and fails when any metric is both >2x worse AND past its
# absolute noise floor vs the committed baseline (exit 4 = regression,
# exit 3 = schema error). This runner's effective speed swings up to
# ~1.9x between measurement windows (shared 1-vCPU host), so a tripped
# gate gets one retry in a fresh window: red means two independent >2x
# readings. See PERFORMANCE.md for the workflow.
cargo build --release -p metal-bench --bin bench_suite
if ! ./target/release/bench_suite --scale ci \
    --out "$tdir/BENCH_ci_new.json" --compare BENCH_ci.json; then
    echo "bench gate tripped; retrying once in a fresh measurement window..."
    sleep 10
    ./target/release/bench_suite --scale ci \
        --out "$tdir/BENCH_ci_new.json" --compare BENCH_ci.json
fi
echo "bench smoke: schema valid, no regression past ratio + noise floor vs BENCH_ci.json"

echo "== ci.sh: all checks passed =="
