//! Property tests for the memory-system substrate's timing invariants.

use metal_sim::caches::{AddressCache, OptCache};
use metal_sim::dram::Dram;
use metal_sim::engine::{Engine, WalkProgram, WalkStep};
use metal_sim::types::{Addr, BlockAddr, Cycles};
use metal_sim::{DramConfig, SimConfig};
use proptest::prelude::*;

proptest! {
    /// DRAM never completes an access before `now + row-hit latency`, and
    /// repeated identical access sequences are deterministic.
    #[test]
    fn dram_latency_lower_bound(
        accesses in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..100),
    ) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let mut now = 0u64;
        for (addr, bytes) in &accesses {
            let done = d.access(now, Addr::new(*addr), *bytes);
            prop_assert!(done.get() >= now + cfg.row_hit_latency.get());
            now = done.get();
        }
        // Determinism.
        let mut d2 = Dram::new(cfg);
        let mut now2 = 0u64;
        for (addr, bytes) in &accesses {
            now2 = d2.access(now2, Addr::new(*addr), *bytes).get();
        }
        prop_assert_eq!(now, now2);
        prop_assert_eq!(d.accesses(), d2.accesses());
        prop_assert_eq!(d.energy_fj(), d2.energy_fj());
    }

    /// DRAM traffic accounting: accesses × 64 == bytes, and the working
    /// set never exceeds the access count.
    #[test]
    fn dram_accounting_consistent(
        accesses in proptest::collection::vec((0u64..100_000, 1u64..256), 1..100),
    ) {
        let mut d = Dram::new(DramConfig::default());
        for (addr, bytes) in accesses {
            d.access(0, Addr::new(addr), bytes);
        }
        prop_assert_eq!(d.bytes(), d.accesses() * 64);
        prop_assert!(d.working_set().distinct_blocks() <= d.accesses());
        prop_assert!(d.row_hits() <= d.accesses());
    }

    /// Address-cache hit count equals probes − misses, and occupancy never
    /// exceeds the configured entries.
    #[test]
    fn address_cache_accounting(
        blocks in proptest::collection::vec(0u64..256, 1..400),
        ways_pow in 0u32..4,
    ) {
        let ways = 1usize << ways_pow;
        let entries = ways * 8;
        let mut c = AddressCache::new(entries, ways);
        for b in blocks {
            c.access(BlockAddr::new(b));
            prop_assert!(c.occupancy() <= entries);
        }
        prop_assert!(c.misses() <= c.probes());
    }

    /// OPT's per-access decision vector has exactly one entry per access
    /// and its misses equal the number of `false` entries.
    #[test]
    fn opt_decisions_align(trace in proptest::collection::vec(0u64..64, 0..300)) {
        let blocks: Vec<BlockAddr> = trace.iter().map(|&b| BlockAddr::new(b)).collect();
        let r = OptCache::new(8).simulate(&blocks);
        prop_assert_eq!(r.hits.len(), blocks.len());
        let miss_count = r.hits.iter().filter(|h| !**h).count() as u64;
        prop_assert_eq!(miss_count, r.misses);
    }

    /// Engine: total execution time is at least the longest single walk,
    /// and at least (total serial work) / lanes.
    #[test]
    fn engine_time_bounds(
        walks in 1u64..40,
        reads in 1u32..6,
        lanes in 1usize..16,
    ) {
        struct Chase {
            walks: u64,
            reads: u32,
            pos: Vec<u32>,
            next: u64,
            base: Vec<u64>,
        }
        impl WalkProgram for Chase {
            fn begin_walk(&mut self, lane: usize) -> bool {
                if self.walks == 0 {
                    return false;
                }
                self.walks -= 1;
                self.pos[lane] = 0;
                self.base[lane] = self.next;
                self.next += 64 * self.reads as u64;
                true
            }
            fn step(&mut self, lane: usize, _now: Cycles) -> WalkStep {
                if self.pos[lane] == self.reads {
                    return WalkStep::Done;
                }
                let a = self.base[lane] + 64 * self.pos[lane] as u64;
                self.pos[lane] += 1;
                WalkStep::Dram { addr: Addr::new(a), bytes: 64 }
            }
        }
        let cfg = SimConfig {
            lanes,
            ..SimConfig::default()
        };
        let mut engine = Engine::new(cfg);
        let report = engine.run(&mut Chase {
            walks,
            reads,
            pos: vec![0; lanes],
            next: 0,
            base: vec![0; lanes],
        });
        prop_assert_eq!(report.walks, walks);
        prop_assert!(report.exec_cycles.get() >= report.walk_latency.max());
        // Each walk serially chains `reads` DRAM accesses of ≥ row-hit
        // latency each.
        let min_walk = reads as u64 * cfg.dram.row_hit_latency.get();
        prop_assert!(report.walk_latency.min() >= min_walk);
    }
}
