//! B+tree index.
//!
//! The textbook index of the paper's Fig. 1: interior nodes hold sorted
//! separator keys and child pointers, leaves hold the keys plus pointers to
//! data records in a separate DRAM region. The tree is bulk-loaded from a
//! sorted key set — the paper's workloads build the index once and then
//! issue millions of walks against it.
//!
//! Two knobs matter for reproduction:
//!
//! - **fanout** (`max_keys` per node; Table 2's "Degree 5 (9 keys)") —
//!   together with the key count it determines **depth**, the paper's
//!   primary scaling axis (10-level default, up to 18 in Fig. 23b).
//! - [`BPlusTree::bulk_load_with_depth`] picks the fanout that produces an
//!   exact target depth for a given key count, so scaled-down datasets keep
//!   the paper's depth.
//!
//! Leaves are linked left-to-right so range scans can stream without
//! re-walking (used by the Scan workload's in-leaf phase).

use crate::arena::{Arena, NodeId};
use crate::walk::{Descend, NodeInfo, WalkIndex};
use metal_sim::types::{Addr, Key};

/// Per-node byte-size model: header + keys + pointers (8 B each).
const NODE_HEADER_BYTES: u64 = 16;

#[derive(Debug, Clone)]
enum NodeKind {
    Interior {
        /// `seps[i]` is the smallest key of `children[i + 1]`.
        seps: Vec<Key>,
        children: Vec<NodeId>,
    },
    Leaf {
        keys: Vec<Key>,
        /// Rank of `keys[0]` in the whole key set (locates the record).
        start_rank: u64,
        /// Next leaf to the right, for range scans.
        next: Option<NodeId>,
    },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    level: u8,
    lo: Key,
    hi: Key,
    slot: usize,
}

/// A bulk-loaded B+tree with simulated physical placement.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: NodeId,
    depth: u8,
    arena: Arena,
    data_base: Addr,
    record_bytes: u64,
    n_keys: u64,
}

impl BPlusTree {
    /// Bulk-loads a B+tree over `keys` (must be sorted, deduplicated,
    /// non-empty) with at most `max_keys` keys per node, placing nodes at
    /// simulated addresses starting at `base`. Each key owns a data record
    /// of `record_bytes` in a region placed immediately after the index.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, unsorted, or contains duplicates, or if
    /// `max_keys < 2`.
    pub fn bulk_load(keys: &[Key], max_keys: usize, base: Addr, record_bytes: u64) -> Self {
        assert!(max_keys >= 2, "need at least 2 keys per node");
        Self::bulk_load_geometry(keys, max_keys, max_keys + 1, base, record_bytes)
    }

    /// Bulk-loads with decoupled geometry: `leaf_keys` keys per leaf and
    /// `fanout` children per interior node. Exposing both knobs lets
    /// [`BPlusTree::bulk_load_with_depth`] hit exact target depths.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty/unsorted, `leaf_keys == 0`, or
    /// `fanout < 2`.
    pub fn bulk_load_geometry(
        keys: &[Key],
        leaf_keys: usize,
        fanout: usize,
        base: Addr,
        record_bytes: u64,
    ) -> Self {
        assert!(!keys.is_empty(), "cannot build an empty B+tree");
        assert!(leaf_keys >= 1, "leaves must hold at least one key");
        assert!(fanout >= 2, "interior fanout must be at least 2");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );

        let mut arena = Arena::new(base);
        let mut nodes: Vec<Node> = Vec::new();

        // Build leaves.
        let mut level_ids: Vec<NodeId> = Vec::new();
        let mut rank = 0u64;
        for chunk in keys.chunks(leaf_keys) {
            let bytes = NODE_HEADER_BYTES + chunk.len() as u64 * 16;
            let slot = arena.alloc(bytes);
            let id = nodes.len() as NodeId;
            nodes.push(Node {
                kind: NodeKind::Leaf {
                    keys: chunk.to_vec(),
                    start_rank: rank,
                    next: None,
                },
                level: 0,
                lo: chunk[0],
                hi: *chunk.last().expect("chunks are non-empty"),
                slot,
            });
            rank += chunk.len() as u64;
            level_ids.push(id);
        }
        // Link leaves.
        for w in 0..level_ids.len().saturating_sub(1) {
            let next = level_ids[w + 1];
            if let NodeKind::Leaf { next: n, .. } = &mut nodes[level_ids[w] as usize].kind {
                *n = Some(next);
            }
        }

        // Build interior levels bottom-up: `fanout` children per node.
        let mut level = 0u8;
        while level_ids.len() > 1 {
            level += 1;
            let mut upper: Vec<NodeId> = Vec::new();
            for group in level_ids.chunks(fanout) {
                let seps: Vec<Key> = group[1..].iter().map(|&c| nodes[c as usize].lo).collect();
                let bytes = NODE_HEADER_BYTES + seps.len() as u64 * 8 + group.len() as u64 * 8;
                let slot = arena.alloc(bytes);
                let id = nodes.len() as NodeId;
                let lo = nodes[group[0] as usize].lo;
                let hi = nodes[*group.last().expect("groups are non-empty") as usize].hi;
                nodes.push(Node {
                    kind: NodeKind::Interior {
                        seps,
                        children: group.to_vec(),
                    },
                    level,
                    lo,
                    hi,
                    slot,
                });
                upper.push(id);
            }
            level_ids = upper;
        }

        let root = level_ids[0];
        let depth = level + 1;
        let data_base = arena.end();
        BPlusTree {
            nodes,
            root,
            depth,
            arena,
            data_base,
            record_bytes,
            n_keys: keys.len() as u64,
        }
    }

    /// Bulk-loads with a geometry that yields exactly `target_depth`
    /// levels for this key count, so scaled-down datasets keep the paper's
    /// depths (10-level default, up to 18 in Fig. 23b).
    ///
    /// The search fixes the interior fanout at the smallest value that can
    /// still reach the depth and sizes the leaves to land exactly on it;
    /// if the exact depth is unreachable (e.g. depth 10 for 4 keys), the
    /// closest achievable depth is used.
    ///
    /// # Panics
    ///
    /// Panics if `target_depth` is 0 or `keys` is empty/unsorted.
    pub fn bulk_load_with_depth(
        keys: &[Key],
        target_depth: u8,
        base: Addr,
        record_bytes: u64,
    ) -> Self {
        assert!(target_depth >= 1, "depth must be at least 1");
        let n = keys.len() as u64;
        let d = target_depth as u32;
        if d == 1 {
            return Self::bulk_load_geometry(keys, keys.len(), 2, base, record_bytes);
        }

        let depth_of = |leaf_keys: u64, fanout: u64| -> u32 {
            let mut width = n.div_ceil(leaf_keys); // leaves
            let mut levels = 1u32;
            while width > 1 {
                width = width.div_ceil(fanout);
                levels += 1;
            }
            levels
        };

        // For each fanout, the leaf budget for exactly d levels is
        // fanout^(d-1) leaves, i.e. leaf_keys ≥ ceil(n / fanout^(d-1)).
        // Among fanouts that hit the depth exactly, prefer node-sized
        // leaves (close to the paper's 9-key nodes) — a large fanout with
        // one-key leaves and a tiny fanout with kilobyte leaves are both
        // geometrically wrong.
        let mut exact: Option<(u64, u64, u64)> = None; // (cost, leaf, fanout)
        let mut closest: Option<(u32, u64, u64)> = None; // (dist, leaf, fanout)
        for fanout in 2u64..=256 {
            let cap = fanout.checked_pow(d - 1).unwrap_or(u64::MAX);
            let leaf_keys = n.div_ceil(cap).max(1);
            let got = depth_of(leaf_keys, fanout);
            if got == d {
                let cost = leaf_keys.abs_diff(8);
                if exact.is_none_or(|(c, _, _)| cost < c) {
                    exact = Some((cost, leaf_keys, fanout));
                }
            } else {
                let dist = got.abs_diff(d);
                if closest.is_none_or(|(dc, _, _)| dist < dc) {
                    closest = Some((dist, leaf_keys, fanout));
                }
            }
        }
        let (leaf_keys, fanout) = match (exact, closest) {
            (Some((_, l, f)), _) => (l, f),
            (None, Some((_, l, f))) => (l, f),
            (None, None) => unreachable!("fanout search covers 2..=256"),
        };
        Self::bulk_load_geometry(
            keys,
            leaf_keys as usize,
            fanout as usize,
            base,
            record_bytes,
        )
    }

    /// The fanout-independent number of keys indexed.
    pub fn len(&self) -> u64 {
        self.n_keys
    }

    /// Whether the tree indexes no keys (never true: empty trees panic at
    /// construction, but the method completes the collection interface).
    pub fn is_empty(&self) -> bool {
        self.n_keys == 0
    }

    /// Base address of the data-record region.
    pub fn data_base(&self) -> Addr {
        self.data_base
    }

    /// Bytes per data record.
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// The leaf that would contain `key`.
    pub fn leaf_for(&self, key: Key) -> NodeId {
        let mut id = self.root;
        loop {
            match self.descend(id, key) {
                Descend::Child(c) => id = c,
                Descend::Leaf { .. } => return id,
            }
        }
    }

    /// The next leaf to the right of `leaf`, if any.
    pub fn next_leaf(&self, leaf: NodeId) -> Option<NodeId> {
        match &self.nodes[leaf as usize].kind {
            NodeKind::Leaf { next, .. } => *next,
            NodeKind::Interior { .. } => None,
        }
    }

    /// Keys stored in `leaf` (empty for interior nodes).
    pub fn leaf_keys(&self, leaf: NodeId) -> &[Key] {
        match &self.nodes[leaf as usize].kind {
            NodeKind::Leaf { keys, .. } => keys,
            NodeKind::Interior { .. } => &[],
        }
    }

    /// All keys in `[lo, hi]`, via one walk plus leaf-link traversal.
    pub fn range(&self, lo: Key, hi: Key) -> Vec<Key> {
        let mut out = Vec::new();
        let mut leaf = Some(self.leaf_for(lo));
        while let Some(l) = leaf {
            let node = &self.nodes[l as usize];
            if node.lo > hi {
                break;
            }
            for &k in self.leaf_keys(l) {
                if k >= lo && k <= hi {
                    out.push(k);
                }
            }
            if node.hi >= hi {
                break;
            }
            leaf = self.next_leaf(l);
        }
        out
    }

    /// Ids of all nodes at `level` (diagnostics / occupancy plots).
    pub fn nodes_at_level(&self, level: u8) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].level == level)
            .collect()
    }
}

impl WalkIndex for BPlusTree {
    fn root(&self) -> NodeId {
        self.root
    }

    fn node(&self, id: NodeId) -> NodeInfo {
        let n = &self.nodes[id as usize];
        let keys = match &n.kind {
            NodeKind::Interior { seps, .. } => seps.len() as u16,
            NodeKind::Leaf { keys, .. } => keys.len() as u16,
        };
        NodeInfo {
            addr: self.arena.addr(n.slot),
            bytes: self.arena.bytes(n.slot),
            level: n.level,
            lo: n.lo,
            hi: n.hi,
            keys,
        }
    }

    fn descend(&self, id: NodeId, key: Key) -> Descend {
        match &self.nodes[id as usize].kind {
            NodeKind::Interior { seps, children } => {
                let idx = seps.partition_point(|&s| s <= key);
                Descend::Child(children[idx])
            }
            NodeKind::Leaf {
                keys, start_rank, ..
            } => match keys.binary_search(&key) {
                Ok(pos) => Descend::Leaf {
                    found: true,
                    value_addr: Addr::new(
                        self.data_base.get() + (start_rank + pos as u64) * self.record_bytes,
                    ),
                    value_bytes: self.record_bytes,
                },
                Err(_) => Descend::Leaf {
                    found: false,
                    value_addr: self.data_base,
                    value_bytes: 0,
                },
            },
        }
    }

    fn depth(&self) -> u8 {
        self.depth
    }

    fn total_blocks(&self) -> u64 {
        self.arena.total_blocks()
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn next_leaf(&self, leaf: NodeId) -> Option<NodeId> {
        BPlusTree::next_leaf(self, leaf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u64) -> Vec<Key> {
        (0..n).collect()
    }

    #[test]
    fn lookup_every_key() {
        let keys: Vec<Key> = (0..500).map(|i| i * 3).collect();
        let t = BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16);
        for &k in &keys {
            assert!(t.contains(k), "key {k} must be found");
        }
        for k in [1u64, 2, 4, 1499, 100_000] {
            assert!(!t.contains(k), "key {k} must be absent");
        }
    }

    #[test]
    fn depth_grows_with_keys() {
        let t1 = BPlusTree::bulk_load(&seq(4), 4, Addr::new(0), 16);
        assert_eq!(t1.depth(), 1, "all keys in one leaf");
        let t2 = BPlusTree::bulk_load(&seq(20), 4, Addr::new(0), 16);
        assert_eq!(t2.depth(), 2);
        let t3 = BPlusTree::bulk_load(&seq(500), 4, Addr::new(0), 16);
        assert!(t3.depth() >= 3);
    }

    #[test]
    fn bulk_load_with_depth_hits_target() {
        for depth in 2..=8u8 {
            let t = BPlusTree::bulk_load_with_depth(&seq(10_000), depth, Addr::new(0), 16);
            assert_eq!(
                t.depth(),
                depth,
                "10k keys should be shapeable to depth {depth}"
            );
            // Structure still correct.
            assert!(t.contains(1234));
            assert!(!t.contains(10_000));
        }
    }

    #[test]
    fn walk_visits_descending_levels() {
        let t = BPlusTree::bulk_load(&seq(1000), 4, Addr::new(0), 16);
        let mut levels = Vec::new();
        t.walk(567, |_, info| levels.push(info.level));
        assert_eq!(levels.len(), t.depth() as usize);
        for w in levels.windows(2) {
            assert_eq!(w[0], w[1] + 1, "each step descends exactly one level");
        }
        assert_eq!(*levels.last().expect("non-empty walk"), 0);
    }

    #[test]
    fn node_ranges_nest() {
        let t = BPlusTree::bulk_load(&seq(1000), 4, Addr::new(0), 16);
        let key = 789;
        let mut prev: Option<NodeInfo> = None;
        t.walk(key, |_, info| {
            assert!(info.covers(key));
            if let Some(p) = prev {
                assert!(p.lo <= info.lo && info.hi <= p.hi, "child range nests");
            }
            prev = Some(*info);
        });
    }

    #[test]
    fn root_covers_whole_key_space() {
        let keys: Vec<Key> = (10..5000).step_by(7).collect();
        let t = BPlusTree::bulk_load(&keys, 8, Addr::new(0), 16);
        let root = t.node(t.root());
        assert_eq!(root.lo, 10);
        assert_eq!(root.hi, *keys.last().unwrap());
        assert_eq!(root.level, t.depth() - 1);
    }

    #[test]
    fn range_scan_returns_exact_window() {
        let keys: Vec<Key> = (0..300).map(|i| i * 2).collect();
        let t = BPlusTree::bulk_load(&keys, 4, Addr::new(0), 16);
        let got = t.range(100, 140);
        let want: Vec<Key> = (50..=70).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_scan_single_leaf() {
        let t = BPlusTree::bulk_load(&seq(100), 10, Addr::new(0), 16);
        assert_eq!(t.range(5, 7), vec![5, 6, 7]);
        assert_eq!(t.range(98, 200), vec![98, 99]);
        assert!(t.range(200, 300).is_empty());
    }

    #[test]
    fn leaf_links_cover_all_leaves_in_order() {
        let t = BPlusTree::bulk_load(&seq(1000), 4, Addr::new(0), 16);
        let mut leaf = Some(t.leaf_for(0));
        let mut seen = Vec::new();
        while let Some(l) = leaf {
            seen.extend_from_slice(t.leaf_keys(l));
            leaf = t.next_leaf(l);
        }
        assert_eq!(seen, seq(1000), "leaf chain yields all keys in order");
    }

    #[test]
    fn value_addresses_are_distinct_and_in_data_region() {
        let t = BPlusTree::bulk_load(&seq(100), 4, Addr::new(0), 32);
        let mut addrs = Vec::new();
        for k in 0..100 {
            if let Descend::Leaf {
                found,
                value_addr,
                value_bytes,
            } = t.walk(k, |_, _| {})
            {
                assert!(found);
                assert!(value_addr.get() >= t.data_base().get());
                assert_eq!(value_bytes, 32);
                addrs.push(value_addr);
            } else {
                panic!("walk must end at a leaf");
            }
        }
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 100, "each record has a distinct address");
    }

    #[test]
    fn total_blocks_matches_node_count_lower_bound() {
        let t = BPlusTree::bulk_load(&seq(1000), 4, Addr::new(0), 16);
        assert!(t.total_blocks() >= t.node_count() as u64);
    }

    #[test]
    fn level_census_is_consistent() {
        let t = BPlusTree::bulk_load(&seq(1000), 4, Addr::new(0), 16);
        let total: usize = (0..t.depth()).map(|l| t.nodes_at_level(l).len()).sum();
        assert_eq!(total, t.node_count());
        assert_eq!(t.nodes_at_level(t.depth() - 1).len(), 1, "one root");
        assert_eq!(t.nodes_at_level(0).len(), 250, "1000 keys / 4 per leaf");
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn rejects_unsorted_keys() {
        let _ = BPlusTree::bulk_load(&[3, 1, 2], 4, Addr::new(0), 16);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_keys() {
        let _ = BPlusTree::bulk_load(&[], 4, Addr::new(0), 16);
    }
}
