//! Tag-match hardware constants (paper Fig. 7).
//!
//! The paper synthesizes its segmented range comparator in Chisel with the
//! Nangate 45 nm PDK and OpenROAD, and compares against published 64-bit
//! comparators. Re-running hardware synthesis is out of scope for a
//! software artifact, so this module records the paper's own numbers as
//! constants — they are the source of the 9000 fJ / 7000 fJ per-access
//! energies used by the energy model ([`metal_sim::config::EnergyConfig`])
//! and of the one-cycle range-match latency.

/// One row of Fig. 7's comparator-synthesis table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorRow {
    /// Source (publication or "this paper").
    pub source: &'static str,
    /// Process node in nanometres.
    pub node_nm: u32,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Transistor count (0 when unreported).
    pub transistors: u32,
    /// Compared bit width; METAL's is 2×32 (a segmented [Lo, Hi] pair).
    pub bits: &'static str,
    /// Power in milliwatts.
    pub mw: f64,
    /// Latency in nanoseconds.
    pub ns: f64,
}

/// Fig. 7's table, verbatim.
pub const COMPARATOR_TABLE: &[ComparatorRow] = &[
    ComparatorRow {
        source: "Chua & Kumar '17 / Tyagi & Pandey '20",
        node_nm: 180,
        vdd: 1.8,
        transistors: 800,
        bits: "64",
        mw: 0.7,
        ns: 0.5,
    },
    ComparatorRow {
        source: "Perri & Corsonello '08",
        node_nm: 90,
        vdd: 1.0,
        transistors: 1051,
        bits: "64",
        mw: 1.0,
        ns: 0.23,
    },
    ComparatorRow {
        source: "Boppana & Ren '16",
        node_nm: 90,
        vdd: 1.2,
        transistors: 0,
        bits: "64",
        mw: 0.9,
        ns: 0.85,
    },
    ComparatorRow {
        source: "Frustaci et al. '12",
        node_nm: 90,
        vdd: 1.0,
        transistors: 1359,
        bits: "64",
        mw: 0.8,
        ns: 0.22,
    },
    ComparatorRow {
        source: "METAL (Nangate 45nm, OpenROAD)",
        node_nm: 45,
        vdd: 0.85,
        transistors: 1400,
        bits: "2x32",
        mw: 0.02,
        ns: 1.0,
    },
];

/// The METAL segmented range-match row (the last table entry).
pub fn metal_comparator() -> ComparatorRow {
    COMPARATOR_TABLE[COMPARATOR_TABLE.len() - 1]
}

/// Per-access energy of the IX-cache's range match in femtojoules
/// (§5.7: "total per-access energy is more expensive for METAL —
/// 9000 fJ vs 7000 fJ").
pub const IX_ACCESS_FJ: u64 = 9_000;

/// Per-access energy of an address/X-Cache tag match in femtojoules.
pub const ADDR_ACCESS_FJ: u64 = 7_000;

/// Range-match latency in DSA cycles (Fig. 7: ~1 ns at the DSA clock).
pub const RANGE_MATCH_CYCLES: u64 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        assert_eq!(COMPARATOR_TABLE.len(), 5);
        let m = metal_comparator();
        assert_eq!(m.node_nm, 45);
        assert_eq!(m.bits, "2x32");
        assert!((m.mw - 0.02).abs() < 1e-12);
        assert!((m.ns - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constants_agree_with_sim_defaults() {
        let e = metal_sim::config::EnergyConfig::default();
        assert_eq!(e.ix_access_fj, IX_ACCESS_FJ);
        assert_eq!(e.addr_access_fj, ADDR_ACCESS_FJ);
        let cfg = metal_sim::SimConfig::default();
        assert_eq!(cfg.range_match_latency.get(), RANGE_MATCH_CYCLES);
    }

    #[test]
    fn metal_is_lowest_power_despite_widest_match() {
        let m = metal_comparator();
        for row in &COMPARATOR_TABLE[..COMPARATOR_TABLE.len() - 1] {
            assert!(m.mw < row.mw, "paper's point: newer node, lower power");
        }
    }
}
