//! Randomized equivalence sweep for the interval-indexed probe path.
//!
//! Three implementations of "what does a probe return" are driven in
//! lockstep over the same op sequence and must agree on every call:
//!
//! 1. [`IxCache::probe`] — the interval-indexed production path
//!    (binary search + bounded neighborhood scan over sorted tags);
//! 2. [`IxCache::probe_reference`] — the legacy linear scan, kept as
//!    the executable reference, run on a *twin* cache fed the same ops
//!    (probes mutate utility/tick/life, so the twin keeps its own
//!    state and both states must also stay identical);
//! 3. [`spec_probe`] — `metal-verify`'s declarative oracle over a
//!    residency snapshot, independent of either scan.
//!
//! The sweep crosses the geometry axes the figures exercise — the
//! `abl_geometry` associativities (1/4/16/64 ways), narrow-only
//! through wide-only splits, and key-block sizes from degenerate to
//! coarse — with op mixes chosen to hit coalesced packing (small
//! payloads sharing a key block), split packing (payloads above one
//! block, fanning out into multi-entry inserts) and eviction storms
//! (budgets far below the insert volume, with pinned entries eroding).

use metal_core::ixcache::{IxCache, IxConfig};
use metal_core::range::KeyRange;
use metal_sim::rng::SplitRng;
use metal_verify::oracle::spec_probe;

/// One randomized run over a fixed geometry: every probe must agree
/// across the indexed path, the reference path and the spec oracle,
/// and the twin caches must remain observably identical.
fn drive(cfg: IxConfig, seed: u64, ops: usize) {
    let mut rng = SplitRng::stream(seed, 0x9e0b_e11a);
    let mut fast = IxCache::new(cfg);
    let mut slow = IxCache::new(cfg);
    let block = 1u64 << cfg.key_block_bits.min(16);
    let span = (block * 64).max(4096);

    for op in 0..ops {
        let roll = rng.gen_range(0..100u64);
        if roll < 45 {
            // Insert. Bias lo toward block starts so coalescing (same
            // block, same level, payloads that sum below one block) and
            // block-straddling wide placements both occur.
            let lo = match rng.gen_range(0..4u64) {
                0 => rng.gen_range(0..span) / block * block,
                _ => rng.gen_range(0..span),
            };
            let width = match rng.gen_range(0..4u64) {
                0 => rng.gen_range(1..=block.min(8)), // narrow, packable
                1 => rng.gen_range(1..=block),        // narrow-ish
                _ => rng.gen_range(1..=span / 4),     // often wide
            };
            let hi = lo.saturating_add(width - 1);
            let level = rng.gen_range(0..4u64) as u8;
            // 16/24-byte payloads coalesce; 960 bytes splits into 15
            // block-sized sub-entries (the paper's Case-2 packing).
            let bytes = [16u64, 24, 40, 64, 128, 960][rng.gen_range(0..6u64) as usize];
            let life = [0u32, 0, 0, 2, 9][rng.gen_range(0..5u64) as usize];
            let index = rng.gen_range(0..2u64) as u8;
            let node = op as u32;
            fast.insert(index, node, KeyRange::new(lo, hi), level, bytes, life);
            slow.insert(index, node, KeyRange::new(lo, hi), level, bytes, life);
        } else if roll < 96 {
            let key = match rng.gen_range(0..8u64) {
                0 => rng.gen_range(0..span) / block * block, // block edges
                1 => span + rng.gen_range(0..span),          // mostly-miss region
                _ => rng.gen_range(0..span),
            };
            let index = rng.gen_range(0..2u64) as u8;
            let snap = fast.snapshot();
            let spec = spec_probe(&snap, index, key, fast.probe_set(index, key));
            let a = fast.probe(index, key);
            let b = slow.probe_reference(index, key);
            assert_eq!(
                a, b,
                "op {op}: indexed probe vs reference probe diverged \
                 (cfg {cfg:?}, seed {seed}, index {index}, key {key})"
            );
            let spec_view = spec.as_ref().map(|h| (h.node, h.level, h.range));
            let got_view = a.as_ref().map(|h| (h.node, h.level, h.range));
            assert_eq!(
                got_view, spec_view,
                "op {op}: indexed probe vs spec oracle diverged \
                 (cfg {cfg:?}, seed {seed}, index {index}, key {key})"
            );
        } else {
            fast.flush();
            slow.flush();
        }
        assert_eq!(
            fast.snapshot(),
            slow.snapshot(),
            "op {op}: twin cache states diverged (cfg {cfg:?}, seed {seed})"
        );
    }
    assert_eq!(fast.stats(), slow.stats(), "cfg {cfg:?}, seed {seed}");
}

#[test]
fn probe_equivalence_across_geometries() {
    // The abl_geometry associativity sweep × partition splits × block
    // sizes. Budgets of 8 entries against hundreds of inserts are a
    // sustained eviction storm; 512 entries exercises the roomy regime.
    let mut cases = 0;
    for &ways in &[1usize, 4, 16, 64] {
        for &entries in &[8usize, 64, 512] {
            for &wide_fraction in &[0.0, 0.5, 1.0] {
                for &key_block_bits in &[0u32, 4, 10] {
                    let cfg = IxConfig {
                        entries,
                        ways: ways.min(entries),
                        key_block_bits,
                        wide_fraction,
                    };
                    drive(cfg, 0xA11CE + cases, 400);
                    cases += 1;
                }
            }
        }
    }
    assert_eq!(cases, 108);
}

#[test]
fn probe_equivalence_long_churn_default_geometry() {
    // One long run on the default figure geometry: deep churn so the
    // interval overlay's lazy prefix bounds go through many rebuild
    // cycles while the three probe views stay in lockstep.
    drive(IxConfig::kb64(), 0xD0_5E_ED, 4000);
}
