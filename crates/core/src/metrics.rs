//! Run-level metrics specific to METAL's evaluation.
//!
//! [`WindowedWorkingSet`] implements Fig. 16's metric: the fraction of the
//! index's blocks touched in DRAM, measured per window of walks and
//! averaged. The paper's point is that repeated root-to-leaf traversals
//! *inflate* the active footprint — per-epoch measurement is what makes
//! "address caches touch ≈85 % of the index" and "METAL touches ≈20 %"
//! simultaneously meaningful on the same index.

use metal_sim::types::BlockAddr;
use std::collections::HashSet;

/// Windowed index-footprint tracker.
#[derive(Debug, Clone)]
pub struct WindowedWorkingSet {
    window_walks: u64,
    total_blocks: u64,
    walks_in_window: u64,
    current: HashSet<BlockAddr>,
    /// Distinct blocks touched per closed window, each clamped to
    /// `total_blocks`. Integer counts (fractions are computed on read)
    /// so shard merges sum exactly.
    touched: Vec<u64>,
}

impl WindowedWorkingSet {
    /// Creates a tracker over an index of `total_blocks` blocks, sampling
    /// every `window_walks` walks.
    ///
    /// # Panics
    ///
    /// Panics if `window_walks` is 0.
    pub fn new(total_blocks: u64, window_walks: u64) -> Self {
        assert!(window_walks > 0, "window must contain at least one walk");
        WindowedWorkingSet {
            window_walks,
            total_blocks,
            walks_in_window: 0,
            current: HashSet::new(),
            touched: Vec::new(),
        }
    }

    /// Records an index block fetched from DRAM.
    pub fn touch(&mut self, block: BlockAddr) {
        self.current.insert(block);
    }

    /// Records an object spanning `[block, block + n)`.
    pub fn touch_span(&mut self, first: BlockAddr, n_blocks: u64) {
        for i in 0..n_blocks {
            self.current.insert(BlockAddr::new(first.get() + i));
        }
    }

    /// Marks a walk complete; closes the window at the boundary.
    pub fn walk_done(&mut self) {
        self.walks_in_window += 1;
        if self.walks_in_window >= self.window_walks {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        if self.total_blocks > 0 {
            self.touched
                .push((self.current.len() as u64).min(self.total_blocks));
        }
        self.current.clear();
        self.walks_in_window = 0;
    }

    /// Average per-window fraction of the index touched. Includes the
    /// (possibly partial) current window if no window has closed yet.
    pub fn average_fraction(&mut self) -> f64 {
        self.finalize();
        if self.touched.is_empty() {
            return 0.0;
        }
        self.touched_sum() as f64 / (self.touched.len() as u64 * self.total_blocks) as f64
    }

    /// Flushes the (partial) current window if no window has closed yet,
    /// so `touched_sum`/`windows` describe the whole run. Idempotent.
    pub fn finalize(&mut self) {
        if self.touched.is_empty() && !self.current.is_empty() {
            self.close_window();
        }
    }

    /// Sum of per-window distinct-block counts (each clamped to the index
    /// size). Together with [`windows`] this is the mergeable integer
    /// form of [`average_fraction`]: shards sum both counters and divide
    /// once at the end, reconstructing the exact global per-window
    /// average with no float-accumulation order sensitivity.
    ///
    /// [`windows`]: WindowedWorkingSet::windows
    /// [`average_fraction`]: WindowedWorkingSet::average_fraction
    pub fn touched_sum(&self) -> u64 {
        self.touched.iter().sum()
    }

    /// Distinct blocks in the current (open) window.
    pub fn current_distinct(&self) -> u64 {
        self.current.len() as u64
    }

    /// Number of closed windows.
    pub fn windows(&self) -> usize {
        self.touched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_window_fractions_average() {
        let mut ws = WindowedWorkingSet::new(100, 2);
        // Window 1: 10 blocks.
        for b in 0..10 {
            ws.touch(BlockAddr::new(b));
        }
        ws.walk_done();
        ws.walk_done();
        // Window 2: 30 blocks.
        for b in 0..30 {
            ws.touch(BlockAddr::new(b));
        }
        ws.walk_done();
        ws.walk_done();
        assert_eq!(ws.windows(), 2);
        assert!((ws.average_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_touches_counted_once() {
        let mut ws = WindowedWorkingSet::new(10, 1);
        ws.touch(BlockAddr::new(3));
        ws.touch(BlockAddr::new(3));
        ws.walk_done();
        assert!((ws.average_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn touch_span_covers_blocks() {
        let mut ws = WindowedWorkingSet::new(10, 1);
        ws.touch_span(BlockAddr::new(2), 3);
        assert_eq!(ws.current_distinct(), 3);
    }

    #[test]
    fn partial_window_flushes_on_read() {
        let mut ws = WindowedWorkingSet::new(10, 1000);
        ws.touch(BlockAddr::new(0));
        ws.walk_done(); // window not yet closed
        assert!((ws.average_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let mut ws = WindowedWorkingSet::new(10, 5);
        assert_eq!(ws.average_fraction(), 0.0);
    }

    #[test]
    fn fraction_clamped_to_one() {
        let mut ws = WindowedWorkingSet::new(2, 1);
        ws.touch_span(BlockAddr::new(0), 10);
        ws.walk_done();
        assert_eq!(ws.average_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_window_rejected() {
        let _ = WindowedWorkingSet::new(10, 0);
    }
}
