//! Differential verification for the METAL reproduction.
//!
//! The simulator's credibility rests on the IX-cache and the baseline
//! caches doing exactly what the paper's spec says. This crate makes the
//! spec *executable* and checks the optimized implementations against it:
//!
//! - [`oracle`] — a flat, obviously-correct reference of the IX-cache
//!   probe rule (deepest covering segment wins) over residency snapshots,
//!   plus a history oracle for the no-eviction regime;
//! - [`refcache`] — independent LRU references for the address cache and
//!   X-Cache, and a Belady sanity oracle for FA-OPT;
//! - [`design`] — event-trace vs statistics accounting checks for every
//!   [`metal_core::models::DesignSpec`];
//! - [`forensics`] — re-derivations of the `metal-obs` forensic
//!   analytics (a Belady-style forward scan for eviction regret, a
//!   reference differential + OPT bound for the miss taxonomy);
//! - [`native`] — seed-generated CRUD cases whose semantic outcomes must
//!   be identical through the simulator and the native paged-node
//!   executor (`ix_fuzz --backend native` drives these);
//! - [`scenario`] — serializable fuzz cases and the seeded swarm
//!   generator (`SplitRng`-driven; no external fuzzing deps);
//! - [`check`] — the differential / metamorphic harness that runs a
//!   scenario and reports the first [`check::Divergence`];
//! - [`shrink`] — delta-debugging minimizer for failing scenarios.
//!
//! The `ix_fuzz` binary drives all of it from a fixed seed (CI runs it
//! on every push); failures are shrunk and written to
//! `crates/verify/corpus/`, which `tests/corpus_replay.rs` replays
//! forever after as regression tests.

#![warn(missing_docs)]

pub mod check;
pub mod design;
pub mod forensics;
pub mod native;
pub mod oracle;
pub mod refcache;
pub mod scenario;
pub mod shrink;

pub use check::{check_translation, run_scenario, Divergence};
pub use native::{check_native_case, gen_native_case, shrink_native_case, NativeCase};
pub use oracle::{spec_probe, HistoryOracle, SpecHit};
pub use scenario::{gen_scenario, Op, Scenario};
pub use shrink::shrink_scenario;
