//! Run-level metrics specific to METAL's evaluation.
//!
//! [`WindowedWorkingSet`] implements Fig. 16's metric: the fraction of the
//! index's blocks touched in DRAM, measured per window of walks and
//! averaged. The paper's point is that repeated root-to-leaf traversals
//! *inflate* the active footprint — per-epoch measurement is what makes
//! "address caches touch ≈85 % of the index" and "METAL touches ≈20 %"
//! simultaneously meaningful on the same index.

use metal_sim::types::BlockAddr;
use std::collections::BTreeMap;

/// Windowed index-footprint tracker.
///
/// The per-window block set is stored as disjoint, coalesced intervals
/// (`start → exclusive end`) plus a maintained total length, so a span
/// touch costs `O(log n)` amortized rather than one hash insert per
/// block — node touches are contiguous block runs, which an interval map
/// absorbs whole.
#[derive(Debug, Clone)]
pub struct WindowedWorkingSet {
    window_walks: u64,
    total_blocks: u64,
    walks_in_window: u64,
    /// Disjoint touched intervals `start → end` (exclusive), coalesced.
    current: BTreeMap<u64, u64>,
    /// Total length of all intervals in `current`.
    current_len: u64,
    /// Distinct blocks touched per closed window, each clamped to
    /// `total_blocks`. Integer counts (fractions are computed on read)
    /// so shard merges sum exactly.
    touched: Vec<u64>,
}

impl WindowedWorkingSet {
    /// Creates a tracker over an index of `total_blocks` blocks, sampling
    /// every `window_walks` walks.
    ///
    /// # Panics
    ///
    /// Panics if `window_walks` is 0.
    pub fn new(total_blocks: u64, window_walks: u64) -> Self {
        assert!(window_walks > 0, "window must contain at least one walk");
        WindowedWorkingSet {
            window_walks,
            total_blocks,
            walks_in_window: 0,
            current: BTreeMap::new(),
            current_len: 0,
            touched: Vec::new(),
        }
    }

    /// Records an index block fetched from DRAM.
    pub fn touch(&mut self, block: BlockAddr) {
        self.touch_span(block, 1);
    }

    /// Records an object spanning `[block, block + n)`.
    pub fn touch_span(&mut self, first: BlockAddr, n_blocks: u64) {
        if n_blocks == 0 {
            return;
        }
        let mut start = first.get();
        let mut end = start.saturating_add(n_blocks);
        // Merge with a predecessor that overlaps or abuts the new span.
        if let Some((&ps, &pe)) = self.current.range(..=start).next_back() {
            if pe >= end {
                return; // already fully covered
            }
            if pe >= start {
                self.current.remove(&ps);
                self.current_len -= pe - ps;
                start = ps;
            }
        }
        // Swallow successors that begin inside (or abut) the span.
        while let Some((&ns, &ne)) = self.current.range(start..=end).next() {
            self.current.remove(&ns);
            self.current_len -= ne - ns;
            end = end.max(ne);
        }
        self.current.insert(start, end);
        self.current_len += end - start;
    }

    /// Marks a walk complete; closes the window at the boundary.
    pub fn walk_done(&mut self) {
        self.walks_in_window += 1;
        if self.walks_in_window >= self.window_walks {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        if self.total_blocks > 0 {
            self.touched.push(self.current_len.min(self.total_blocks));
        }
        self.current.clear();
        self.current_len = 0;
        self.walks_in_window = 0;
    }

    /// Average per-window fraction of the index touched. Includes the
    /// (possibly partial) current window if no window has closed yet.
    pub fn average_fraction(&mut self) -> f64 {
        self.finalize();
        if self.touched.is_empty() {
            return 0.0;
        }
        self.touched_sum() as f64 / (self.touched.len() as u64 * self.total_blocks) as f64
    }

    /// Flushes the (partial) current window if no window has closed yet,
    /// so `touched_sum`/`windows` describe the whole run. Idempotent.
    pub fn finalize(&mut self) {
        if self.touched.is_empty() && !self.current.is_empty() {
            self.close_window();
        }
    }

    /// Sum of per-window distinct-block counts (each clamped to the index
    /// size). Together with [`windows`] this is the mergeable integer
    /// form of [`average_fraction`]: shards sum both counters and divide
    /// once at the end, reconstructing the exact global per-window
    /// average with no float-accumulation order sensitivity.
    ///
    /// [`windows`]: WindowedWorkingSet::windows
    /// [`average_fraction`]: WindowedWorkingSet::average_fraction
    pub fn touched_sum(&self) -> u64 {
        self.touched.iter().sum()
    }

    /// Distinct blocks in the current (open) window.
    pub fn current_distinct(&self) -> u64 {
        self.current_len
    }

    /// Number of closed windows.
    pub fn windows(&self) -> usize {
        self.touched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_window_fractions_average() {
        let mut ws = WindowedWorkingSet::new(100, 2);
        // Window 1: 10 blocks.
        for b in 0..10 {
            ws.touch(BlockAddr::new(b));
        }
        ws.walk_done();
        ws.walk_done();
        // Window 2: 30 blocks.
        for b in 0..30 {
            ws.touch(BlockAddr::new(b));
        }
        ws.walk_done();
        ws.walk_done();
        assert_eq!(ws.windows(), 2);
        assert!((ws.average_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicate_touches_counted_once() {
        let mut ws = WindowedWorkingSet::new(10, 1);
        ws.touch(BlockAddr::new(3));
        ws.touch(BlockAddr::new(3));
        ws.walk_done();
        assert!((ws.average_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn touch_span_covers_blocks() {
        let mut ws = WindowedWorkingSet::new(10, 1);
        ws.touch_span(BlockAddr::new(2), 3);
        assert_eq!(ws.current_distinct(), 3);
    }

    #[test]
    fn partial_window_flushes_on_read() {
        let mut ws = WindowedWorkingSet::new(10, 1000);
        ws.touch(BlockAddr::new(0));
        ws.walk_done(); // window not yet closed
        assert!((ws.average_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let mut ws = WindowedWorkingSet::new(10, 5);
        assert_eq!(ws.average_fraction(), 0.0);
    }

    #[test]
    fn fraction_clamped_to_one() {
        let mut ws = WindowedWorkingSet::new(2, 1);
        ws.touch_span(BlockAddr::new(0), 10);
        ws.walk_done();
        assert_eq!(ws.average_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_window_rejected() {
        let _ = WindowedWorkingSet::new(10, 0);
    }

    #[test]
    fn overlapping_spans_coalesce() {
        let mut ws = WindowedWorkingSet::new(100, 1);
        ws.touch_span(BlockAddr::new(10), 5); // [10, 15)
        ws.touch_span(BlockAddr::new(13), 5); // [13, 18) overlaps
        ws.touch_span(BlockAddr::new(18), 2); // [18, 20) abuts
        ws.touch_span(BlockAddr::new(11), 3); // fully covered
        assert_eq!(ws.current_distinct(), 10); // [10, 20)
    }

    #[test]
    fn span_bridging_many_intervals() {
        let mut ws = WindowedWorkingSet::new(1000, 1);
        for s in [0u64, 10, 20, 30] {
            ws.touch_span(BlockAddr::new(s), 2);
        }
        assert_eq!(ws.current_distinct(), 8);
        ws.touch_span(BlockAddr::new(1), 30); // swallows all four
        assert_eq!(ws.current_distinct(), 32); // [0, 32)
    }

    #[test]
    fn interval_count_matches_naive_set() {
        // Cross-check the interval map against a naive per-block set on a
        // deterministic pseudo-random span workload.
        let mut ws = WindowedWorkingSet::new(1 << 20, 1);
        let mut naive = std::collections::HashSet::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let start = (x >> 33) % 4096;
            let len = (x % 37) + 1;
            ws.touch_span(BlockAddr::new(start), len);
            for b in start..start + len {
                naive.insert(b);
            }
        }
        assert_eq!(ws.current_distinct(), naive.len() as u64);
    }

    #[test]
    fn zero_length_span_is_noop() {
        let mut ws = WindowedWorkingSet::new(10, 1);
        ws.touch_span(BlockAddr::new(3), 0);
        assert_eq!(ws.current_distinct(), 0);
    }
}
