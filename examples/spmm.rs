//! Sparse matrix multiplication on Capstan (the paper's §4.1 scenario).
//!
//! Builds a synthetic sparse matrix as a deep dynamic tensor and as
//! shallow fibers, runs the SpMM inner-product schedule under METAL and
//! X-Cache, and shows the deep-vs-shallow effect: with a deep index METAL
//! clearly beats the leaf-only X-Cache; with 3-level fibers they converge
//! (the paper's -S result).
//!
//! ```sh
//! cargo run --release --example spmm
//! ```

use metal::core::prelude::*;
use metal::workloads::{Scale, Workload};

fn run(workload: Workload, scale: Scale) -> (f64, f64, u8) {
    let built = workload.build(scale);
    let exp = built.experiment();
    let cfg = RunConfig::default().with_lanes(built.tiles);
    let stream = run_design(&DesignSpec::Stream, &exp, &cfg);
    let xcache = run_design(
        &DesignSpec::XCache {
            entries: 1024,
            ways: 16,
        },
        &exp,
        &cfg,
    );
    let metal = run_design(
        &DesignSpec::Metal {
            ix: IxConfig::kb64(),
            descriptors: built.descriptors.clone(),
            tune: false,
            batch_walks: built.batch_walks,
        },
        &exp,
        &cfg,
    );
    (
        xcache.speedup_vs(&stream),
        metal.speedup_vs(&stream),
        exp.max_depth(),
    )
}

fn main() {
    let scale = Scale::bench().with_walks(30_000);

    let (x_deep, m_deep, d_deep) = run(Workload::SpMM, scale);
    let (x_shallow, m_shallow, d_shallow) = run(Workload::SpMMShallow, scale);

    println!("SpMM inner product, speedup over the streaming DSA:");
    println!("  deep dynamic tensor (depth {d_deep}):   x-cache {x_deep:.2}x   metal {m_deep:.2}x");
    println!(
        "  shallow fibers      (depth {d_shallow}):   x-cache {x_shallow:.2}x   metal {m_shallow:.2}x"
    );
    println!(
        "\ndeep-index advantage of METAL over X-Cache: {:.2}x (paper: ~2.4x)",
        m_deep / x_deep
    );
    println!(
        "shallow-index gap narrows to: {:.2}x (paper: within ~15%)",
        m_shallow / x_shallow
    );
}
