//! # metal-bench — harness utilities for regenerating the paper's figures
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index); this library
//! holds what they share: command-line scale selection, the
//! workload × design sweep, and CSV output.
//!
//! Output convention: every binary prints a CSV with a header row to
//! stdout, prefixed by `#`-comment lines describing the experiment and
//! the paper's expectation, so the harness output is both human-checkable
//! and machine-parsable.

use metal_core::models::DesignSpec;
use metal_core::runner::{run_design, RunConfig, RunReport, DEFAULT_SHARD_WALKS};
use metal_core::IxConfig;
use metal_workloads::{BuiltWorkload, Scale, Workload};

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Dataset/run scale.
    pub scale: Scale,
    /// Cache capacity in bytes for every design (paper default: 64 kB).
    pub cache_bytes: usize,
    /// Simulation worker threads (`0` = all available cores). Seeds from
    /// the `METAL_SHARDS` environment variable; `--shards N` overrides.
    /// Never changes results, only wall-clock time.
    pub shards: usize,
    /// Logical-shard grain (`--shard-walks N`). The default (unbounded)
    /// keeps the serial single-engine methodology; a finite grain opts
    /// into partitioned-accelerator semantics and *changes results* (see
    /// `metal_core::runner`'s module docs).
    pub shard_walks: u64,
}

/// The `METAL_SHARDS` worker-count override, `0` (= all cores) when the
/// variable is unset or unparsable.
pub fn env_shards() -> usize {
    std::env::var("METAL_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::bench(),
            cache_bytes: 64 * 1024,
            shards: env_shards(),
            shard_walks: DEFAULT_SHARD_WALKS,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`:
    ///
    /// - `--scale ci|bench|paper`
    /// - `--keys N`, `--walks N`, `--depth N`, `--seed N`
    /// - `--cache-kb N`
    /// - `--shards N` (worker threads; 0 = all cores; also settable via
    ///   `METAL_SHARDS`)
    /// - `--shard-walks N` (logical-shard grain; opt-in, changes the
    ///   simulated machine model; 0 = unbounded default)
    ///
    /// Unknown flags are ignored so figure-specific binaries can add
    /// their own.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_default();
                    out.scale = match v.as_str() {
                        "ci" => Scale::ci(),
                        "bench" => Scale::bench(),
                        "paper" => Scale::paper(),
                        other => panic!("unknown scale '{other}' (ci|bench|paper)"),
                    };
                }
                "--keys" => out.scale.keys = next_u64(&mut it, "--keys"),
                "--walks" => out.scale.walks = next_u64(&mut it, "--walks"),
                "--depth" => out.scale.depth = next_u64(&mut it, "--depth") as u8,
                "--seed" => out.scale.seed = next_u64(&mut it, "--seed"),
                "--cache-kb" => {
                    out.cache_bytes = next_u64(&mut it, "--cache-kb") as usize * 1024
                }
                "--shards" => out.shards = next_u64(&mut it, "--shards") as usize,
                "--shard-walks" => {
                    out.shard_walks = match next_u64(&mut it, "--shard-walks") {
                        0 => DEFAULT_SHARD_WALKS,
                        n => n,
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The execution half of these arguments as a [`RunConfig`] (worker
    /// threads + shard grain). Lanes are workload-specific, so
    /// `run_workload`/`run_one` fill them in per workload.
    pub fn run_config(&self) -> RunConfig {
        RunConfig::default()
            .with_shards(self.shards)
            .with_shard_walks(self.shard_walks.max(1))
    }
}

fn next_u64(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
}

/// The set of designs most figures compare, sized to `cache_bytes` and
/// configured with the workload's Table 2 descriptors.
pub fn figure_designs(built: &BuiltWorkload, cache_bytes: usize) -> Vec<(String, DesignSpec)> {
    let entries = (cache_bytes / 64).max(16);
    let ix = IxConfig::with_capacity_bytes(cache_bytes);
    vec![
        ("stream".into(), DesignSpec::Stream),
        (
            "address".into(),
            DesignSpec::Address { entries, ways: 16 },
        ),
        ("fa-opt".into(), DesignSpec::FaOpt { entries }),
        (
            "x-cache".into(),
            DesignSpec::XCache { entries, ways: 16 },
        ),
        ("metal-ix".into(), DesignSpec::MetalIx { ix }),
        (
            "metal".into(),
            DesignSpec::Metal {
                ix,
                descriptors: built.descriptors.clone(),
                tune: true,
                batch_walks: built.batch_walks,
            },
        ),
    ]
}

/// Runs one workload under all figure designs. `cfg` carries the
/// execution knobs (worker threads, shard grain — see
/// [`HarnessArgs::run_config`]); its lane count is overridden by the
/// workload's tile count.
pub fn run_workload(
    workload: Workload,
    scale: Scale,
    cache_bytes: usize,
    cfg: RunConfig,
) -> Vec<(String, RunReport)> {
    let built = workload.build(scale);
    let exp = built.experiment();
    let cfg = cfg.with_lanes(built.tiles);
    let (names, specs): (Vec<String>, Vec<DesignSpec>) =
        figure_designs(&built, cache_bytes).into_iter().unzip();
    let reports = metal_core::runner::run_designs_parallel(&specs, &exp, &cfg);
    names.into_iter().zip(reports).collect()
}

/// Runs one workload under one design. `cfg` carries the execution knobs
/// as in [`run_workload`].
pub fn run_one(
    workload: Workload,
    scale: Scale,
    spec: &DesignSpec,
    lanes_override: Option<usize>,
    cfg: RunConfig,
) -> RunReport {
    let built = workload.build(scale);
    let exp = built.experiment();
    let cfg = cfg.with_lanes(lanes_override.unwrap_or(built.tiles));
    run_design(spec, &exp, &cfg)
}

/// Prints a CSV row, comma-separated, no trailing comma.
pub fn csv_row<S: AsRef<str>>(cells: impl IntoIterator<Item = S>) {
    let row: Vec<String> = cells.into_iter().map(|s| s.as_ref().to_string()).collect();
    println!("{}", row.join(","));
}

/// Formats a float to three significant decimals for CSV cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> HarnessArgs {
        HarnessArgs::parse_from(s.split_whitespace().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = args("");
        assert_eq!(a.scale, Scale::bench());
        assert_eq!(a.cache_bytes, 64 * 1024);
    }

    #[test]
    fn scale_presets() {
        assert_eq!(args("--scale ci").scale, Scale::ci());
        assert_eq!(args("--scale paper").scale, Scale::paper());
    }

    #[test]
    fn numeric_overrides() {
        let a = args("--scale ci --keys 1000 --walks 500 --depth 6 --seed 3 --cache-kb 32");
        assert_eq!(a.scale.keys, 1000);
        assert_eq!(a.scale.walks, 500);
        assert_eq!(a.scale.depth, 6);
        assert_eq!(a.scale.seed, 3);
        assert_eq!(a.cache_bytes, 32 * 1024);
    }

    #[test]
    fn unknown_flags_ignored() {
        let a = args("--frobnicate 7 --keys 10");
        assert_eq!(a.scale.keys, 10);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_rejected() {
        let _ = args("--scale huge");
    }

    #[test]
    fn shard_flags_parse() {
        let a = args("--shards 4 --shard-walks 512");
        assert_eq!(a.shards, 4);
        assert_eq!(a.shard_walks, 512);
        let cfg = a.run_config();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.shard_walks, 512);
        // 0 and absence both mean the unbounded (single-engine) default.
        assert_eq!(args("--shard-walks 0").shard_walks, DEFAULT_SHARD_WALKS);
        assert_eq!(args("").shard_walks, DEFAULT_SHARD_WALKS);
    }

    #[test]
    fn run_one_smoke() {
        let scale = Scale::ci().with_keys(2000).with_walks(300);
        let r = run_one(
            Workload::Where,
            scale,
            &DesignSpec::Stream,
            None,
            RunConfig::default(),
        );
        assert_eq!(r.stats.walks, 300);
    }
}
