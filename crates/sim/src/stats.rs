//! Counters and derived metrics for a simulation run.
//!
//! Three families of metrics reproduce the paper's measurement axes:
//!
//! - **Miss rate** (Fig. 15): misses / probes for whichever cache design is
//!   under test.
//! - **Working set** (Fig. 16): the fraction of the index's blocks that were
//!   actually fetched from DRAM during the run.
//! - **Walk latency** (Fig. 17): per-walk latency samples aggregated into an
//!   average (plus min/max for diagnostics).
//!
//! Energy is accumulated in femtojoules and split into DRAM, cache and
//! compute/walker components (Figs. 19 and 25).

use crate::types::{BlockAddr, Cycles};
use std::collections::HashSet;

/// Tracks the set of distinct DRAM blocks touched by a run.
#[derive(Debug, Clone, Default)]
pub struct WorkingSet {
    blocks: HashSet<BlockAddr>,
}

impl WorkingSet {
    /// Creates an empty working set.
    pub fn new() -> Self {
        WorkingSet::default()
    }

    /// Records that `block` was fetched from DRAM.
    pub fn touch(&mut self, block: BlockAddr) {
        self.blocks.insert(block);
    }

    /// Number of distinct blocks touched.
    pub fn distinct_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Fraction of an index of `total_blocks` blocks that was touched.
    ///
    /// Returns 0.0 for an empty index to avoid division by zero.
    pub fn fraction_of(&self, total_blocks: u64) -> f64 {
        if total_blocks == 0 {
            0.0
        } else {
            self.distinct_blocks() as f64 / total_blocks as f64
        }
    }

    /// Whether a given block has been touched.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.blocks.contains(&block)
    }
}

/// Latency accumulator with average/min/max.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, lat: Cycles) {
        let l = lat.get();
        if self.count == 0 {
            self.min = l;
            self.max = l;
        } else {
            self.min = self.min.min(l);
            self.max = self.max.max(l);
        }
        self.count += 1;
        self.total = self.total.saturating_add(l);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when none).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when none).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Complete statistics for one simulated run of one cache design.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Cache probes issued (IX-cache, address cache or X-Cache).
    pub probes: u64,
    /// Cache probe misses.
    pub misses: u64,
    /// Index-node reads that went to DRAM.
    pub dram_node_reads: u64,
    /// Per-walk latency samples.
    pub walk_latency: LatencyStats,
    /// Number of completed walks.
    pub walks: u64,
    /// Walks whose key was found in the index. Cache organization must
    /// never change this — it is a cross-design correctness invariant.
    pub found_walks: u64,
    /// Total execution time of the run (completion of last walk).
    pub exec_cycles: Cycles,
    /// Cache dynamic energy (fJ): probes × per-access cost.
    pub cache_energy_fj: u64,
    /// DRAM dynamic energy (fJ), mirrored from the DRAM model.
    pub dram_energy_fj: u64,
    /// Compute-tile energy (fJ): ops × per-op cost.
    pub compute_energy_fj: u64,
    /// Walker + pattern-controller energy (fJ).
    pub walker_energy_fj: u64,
    /// Total compute operations retired.
    pub compute_ops: u64,
    /// Distinct DRAM blocks touched.
    pub distinct_blocks: u64,
    /// Total number of blocks in the index (for working-set fraction).
    pub index_blocks: u64,
    /// Windowed working-set fraction measured by the runner (Fig. 16's
    /// metric). When set (> 0), it overrides the whole-run
    /// `distinct_blocks / index_blocks` ratio.
    pub ws_fraction: f64,
    /// Total DRAM bytes transferred.
    pub dram_bytes: u64,
    /// Nodes inserted into the cache under test.
    pub inserts: u64,
    /// Nodes the descriptor chose to bypass (METAL only).
    pub bypasses: u64,
    /// Number of walk steps short-circuited by cache hits (nodes *not*
    /// walked thanks to kick-starting below the root).
    pub levels_skipped: u64,
    /// Histogram of probe-hit levels (`hit_levels[l]` = hits that landed
    /// on a level-`l` entry); diagnostic for reach-vs-short-circuit.
    pub hit_levels: Vec<u64>,
}

impl RunStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Miss rate = misses / probes (0.0 when no probes).
    pub fn miss_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.misses as f64 / self.probes as f64
        }
    }

    /// Hit rate = 1 − miss rate.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }

    /// Fraction of the index touched in DRAM (Fig. 16's metric): the
    /// windowed measurement when present, the whole-run ratio otherwise.
    pub fn working_set_fraction(&self) -> f64 {
        if self.ws_fraction > 0.0 {
            self.ws_fraction.min(1.0)
        } else if self.index_blocks == 0 {
            0.0
        } else {
            (self.distinct_blocks as f64 / self.index_blocks as f64).min(1.0)
        }
    }

    /// Mean walk latency in cycles (Fig. 17's metric).
    pub fn avg_walk_latency(&self) -> f64 {
        self.walk_latency.mean()
    }

    /// Total on-chip + DRAM energy in femtojoules.
    pub fn total_energy_fj(&self) -> u64 {
        self.cache_energy_fj
            .saturating_add(self.dram_energy_fj)
            .saturating_add(self.compute_energy_fj)
            .saturating_add(self.walker_energy_fj)
    }

    /// Total on-chip energy (excluding DRAM), for Fig. 25's breakdown.
    pub fn onchip_energy_fj(&self) -> u64 {
        self.cache_energy_fj
            .saturating_add(self.compute_energy_fj)
            .saturating_add(self.walker_energy_fj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_dedupes() {
        let mut ws = WorkingSet::new();
        ws.touch(BlockAddr::new(1));
        ws.touch(BlockAddr::new(1));
        ws.touch(BlockAddr::new(2));
        assert_eq!(ws.distinct_blocks(), 2);
        assert!(ws.contains(BlockAddr::new(1)));
        assert!(!ws.contains(BlockAddr::new(3)));
    }

    #[test]
    fn working_set_fraction_handles_empty_index() {
        let ws = WorkingSet::new();
        assert_eq!(ws.fraction_of(0), 0.0);
    }

    #[test]
    fn working_set_fraction_basic() {
        let mut ws = WorkingSet::new();
        for b in 0..25 {
            ws.touch(BlockAddr::new(b));
        }
        assert!((ws.fraction_of(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_stats_aggregate() {
        let mut ls = LatencyStats::default();
        assert_eq!(ls.mean(), 0.0);
        ls.record(Cycles::new(10));
        ls.record(Cycles::new(20));
        ls.record(Cycles::new(60));
        assert_eq!(ls.count(), 3);
        assert_eq!(ls.min(), 10);
        assert_eq!(ls.max(), 60);
        assert!((ls.mean() - 30.0).abs() < 1e-12);
        assert_eq!(ls.total(), 90);
    }

    #[test]
    fn run_stats_miss_rate() {
        let mut s = RunStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        s.probes = 10;
        s.misses = 4;
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn run_stats_energy_totals() {
        let s = RunStats {
            cache_energy_fj: 10,
            dram_energy_fj: 100,
            compute_energy_fj: 5,
            walker_energy_fj: 1,
            ..RunStats::new()
        };
        assert_eq!(s.total_energy_fj(), 116);
        assert_eq!(s.onchip_energy_fj(), 16);
    }

    #[test]
    fn working_set_fraction_clamped() {
        let s = RunStats {
            distinct_blocks: 200,
            index_blocks: 100,
            ..RunStats::new()
        };
        // Data blocks outside the index can inflate the count; the fraction
        // is clamped to 1.0 because the metric is "fraction of the index".
        assert_eq!(s.working_set_fraction(), 1.0);
    }
}
