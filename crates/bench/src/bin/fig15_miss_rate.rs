//! Fig. 15 — Miss rate: METAL vs X-Cache vs FA-OPT.
//!
//! §5.1's first metric. Paper expectation: X-Cache misses 0.6–0.95 on
//! deep indexes (leaves have minimal reuse); FA-OPT is lower but
//! misleading (its hits only save one access each); METAL's probe miss
//! rate is the lowest because cached bands cover the key space.
//!
//! Run: `cargo run --release -p metal-bench --bin fig15_miss_rate`

use metal_bench::{csv_row, f3, run_workload, HarnessArgs, Session};
use metal_workloads::Workload;

fn main() {
    let args = HarnessArgs::parse();
    let mut session = Session::new("fig15_miss_rate", &args);
    println!("# Fig 15: miss rate (lower is better; note §5.1 obs. 2 — miss");
    println!("#   rates are not comparable across organizations: hit/miss paths differ)");
    println!("# paper expectation: x-cache 0.6-0.95; metal lowest");
    csv_row(["workload", "fa-opt", "x-cache", "metal-ix", "metal"]);
    for w in Workload::all() {
        let reports = run_workload(w, args.scale, args.cache_bytes, session.config(w.name()));
        for (name, r) in &reports {
            session.record(w.name(), name, &r.stats);
        }
        let mr = |i: usize| f3(reports[i].1.stats.miss_rate());
        csv_row([w.name().to_string(), mr(2), mr(3), mr(4), mr(5)]);
    }
    session.finish();
}
