//! Cache descriptors: the explicit insert/bypass interface (§4).
//!
//! A descriptor is "a pragma or hint that METAL uses to express reuse
//! patterns to the IX-cache": for every node a walker touches, the pattern
//! controller asks the active descriptor whether to insert it or bypass
//! the cache entirely. Descriptors express policy on *affine* index
//! features (levels, ranges) rather than the non-affine addresses walks
//! actually chase.
//!
//! The three generalized patterns from the paper, plus composition:
//!
//! - [`NodeDescriptor`] (§4.1, SpMM; §4.4, sorted sets) — target one node
//!   class (typically leaves) and pin entries for a workload-supplied
//!   *lifetime* (SpMM pins a column for its non-zero count).
//! - [`LevelDescriptor`] (§4.2, database scans) — cache a band of tree
//!   levels `[upper, lower]`; everything above is redundant, everything
//!   below uncommon.
//! - [`BranchDescriptor`] (§4.3, spatial) — cache sub-branches around a
//!   pivot key out to a depth, following clustered key windows.
//! - [`Descriptor::Or`] — union of two patterns (Table 2's "Node+Branch").

use metal_index::walk::NodeInfo;
use metal_sim::obs::AdmitReason;

/// Pattern-controller verdict for one walked node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Insert into the IX-cache, pinned for `life` hits (0 = unpinned).
    Insert {
        /// Number of hits the entry is pinned for.
        life: u32,
    },
    /// Do not cache this node.
    Bypass,
}

/// Per-walk context available to admission decisions.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitCtx {
    /// Workload-supplied reuse estimate for this walk's target (e.g. the
    /// non-zero count of the SpMM column being fetched).
    pub life_hint: u32,
}

/// Node pattern: target exactly one level (usually the leaves), pinning
/// entries for the workload's lifetime hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDescriptor {
    /// The level to cache (0 = leaves).
    pub level: u8,
    /// Whether to pin inserted entries for the walk's life hint.
    pub use_life_hint: bool,
}

impl NodeDescriptor {
    /// Leaf-targeting node descriptor with lifetime pinning — the SpMM
    /// configuration from §4.1.
    pub fn leaves() -> Self {
        NodeDescriptor {
            level: 0,
            use_life_hint: true,
        }
    }
}

/// Level pattern: cache the band of levels `[lower, upper]` (inclusive,
/// leaf = 0). Levels above `upper` are redundant once the band hits;
/// levels below `lower` are uncommon across walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDescriptor {
    /// Deepest cached level (closer to leaves).
    pub lower: u8,
    /// Shallowest cached level (closer to root).
    pub upper: u8,
}

impl LevelDescriptor {
    /// Creates a band.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    pub fn band(lower: u8, upper: u8) -> Self {
        assert!(
            lower <= upper,
            "band lower ({lower}) must be ≤ upper ({upper})"
        );
        LevelDescriptor { lower, upper }
    }

    /// Number of levels in the band.
    pub fn width(&self) -> u8 {
        self.upper - self.lower + 1
    }
}

/// Branch pattern: cache nodes of level ≤ `depth` whose range overlaps the
/// window `[pivot − halfwidth, pivot + halfwidth]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchDescriptor {
    /// Centre of the hot key window (the cluster median, §4.3).
    pub pivot: u64,
    /// Half-width of the window to the left and right of the pivot.
    pub halfwidth: u64,
    /// Deepest level band cached below the pivot's sub-branch root.
    pub depth: u8,
}

impl BranchDescriptor {
    /// The key window currently targeted.
    pub fn window(&self) -> (u64, u64) {
        (
            self.pivot.saturating_sub(self.halfwidth),
            self.pivot.saturating_add(self.halfwidth),
        )
    }
}

/// A reuse-pattern descriptor, possibly composed.
///
/// ```
/// use metal_core::descriptor::{Admit, AdmitCtx, Descriptor, LevelDescriptor};
/// use metal_index::walk::NodeInfo;
/// use metal_sim::types::Addr;
///
/// // §4.2: cache the band of levels [2, 4]; bypass everything else.
/// let band = Descriptor::Level(LevelDescriptor::band(2, 4));
/// let node = |level| NodeInfo {
///     addr: Addr::new(0), bytes: 64, level, lo: 0, hi: 99, keys: 4,
/// };
/// let ctx = AdmitCtx::default();
/// assert_eq!(band.admit(&node(3), &ctx), Admit::Insert { life: 0 });
/// assert_eq!(band.admit(&node(0), &ctx), Admit::Bypass);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Descriptor {
    /// Greedy: insert every walked node (METAL-IX's hardwired behaviour).
    All,
    /// Insert nothing (pure bypass; useful as an ablation).
    None,
    /// Node pattern.
    Node(NodeDescriptor),
    /// Level-band pattern.
    Level(LevelDescriptor),
    /// Branch pattern.
    Branch(BranchDescriptor),
    /// Union: insert if either side admits (life = max of the two).
    Or(Box<Descriptor>, Box<Descriptor>),
}

impl Descriptor {
    /// Convenience constructor for `Or`.
    pub fn or(a: Descriptor, b: Descriptor) -> Descriptor {
        Descriptor::Or(Box::new(a), Box::new(b))
    }

    /// Decides whether `info` should be inserted into the IX-cache.
    pub fn admit(&self, info: &NodeInfo, ctx: &AdmitCtx) -> Admit {
        self.decide(info, ctx).0
    }

    /// Decides admission and reports *which pattern arm* decided — the
    /// telemetry behind `Insert`/`Bypass` events. For [`Descriptor::Or`],
    /// an admitting arm reports its own reason (left arm preferred when
    /// both admit); a double bypass reports [`AdmitReason::Composite`].
    pub fn decide(&self, info: &NodeInfo, ctx: &AdmitCtx) -> (Admit, AdmitReason) {
        match self {
            Descriptor::All => (Admit::Insert { life: 0 }, AdmitReason::All),
            Descriptor::None => (Admit::Bypass, AdmitReason::None),
            Descriptor::Node(d) => {
                let verdict = if info.level == d.level {
                    Admit::Insert {
                        life: if d.use_life_hint { ctx.life_hint } else { 0 },
                    }
                } else {
                    Admit::Bypass
                };
                (verdict, AdmitReason::NodeLevel)
            }
            Descriptor::Level(d) => {
                let verdict = if d.lower <= info.level && info.level <= d.upper {
                    Admit::Insert { life: 0 }
                } else {
                    Admit::Bypass
                };
                (verdict, AdmitReason::LevelBand)
            }
            Descriptor::Branch(d) => {
                let (lo, hi) = d.window();
                let verdict = if info.level <= d.depth && info.lo <= hi && lo <= info.hi {
                    Admit::Insert { life: 0 }
                } else {
                    Admit::Bypass
                };
                (verdict, AdmitReason::BranchWindow)
            }
            Descriptor::Or(a, b) => match (a.decide(info, ctx), b.decide(info, ctx)) {
                ((Admit::Insert { life: l1 }, r1), (Admit::Insert { life: l2 }, _)) => {
                    (Admit::Insert { life: l1.max(l2) }, r1)
                }
                ((ins @ Admit::Insert { .. }, r), _) | (_, (ins @ Admit::Insert { .. }, r)) => {
                    (ins, r)
                }
                _ => (Admit::Bypass, AdmitReason::Composite),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metal_sim::types::Addr;

    fn node(level: u8, lo: u64, hi: u64) -> NodeInfo {
        NodeInfo {
            addr: Addr::new(0),
            bytes: 64,
            level,
            lo,
            hi,
            keys: 4,
        }
    }

    #[test]
    fn all_admits_everything() {
        let d = Descriptor::All;
        for l in 0..10 {
            assert_eq!(
                d.admit(&node(l, 0, 100), &AdmitCtx::default()),
                Admit::Insert { life: 0 }
            );
        }
    }

    #[test]
    fn none_bypasses_everything() {
        let d = Descriptor::None;
        assert_eq!(d.admit(&node(0, 0, 1), &AdmitCtx::default()), Admit::Bypass);
    }

    #[test]
    fn node_descriptor_targets_one_level_with_life() {
        let d = Descriptor::Node(NodeDescriptor::leaves());
        let ctx = AdmitCtx { life_hint: 12 };
        assert_eq!(d.admit(&node(0, 5, 9), &ctx), Admit::Insert { life: 12 });
        assert_eq!(d.admit(&node(1, 5, 9), &ctx), Admit::Bypass);
        assert_eq!(d.admit(&node(5, 5, 9), &ctx), Admit::Bypass);
    }

    #[test]
    fn node_descriptor_without_life_hint() {
        let d = Descriptor::Node(NodeDescriptor {
            level: 2,
            use_life_hint: false,
        });
        let ctx = AdmitCtx { life_hint: 99 };
        assert_eq!(d.admit(&node(2, 0, 1), &ctx), Admit::Insert { life: 0 });
    }

    #[test]
    fn level_band_admits_interval() {
        let d = Descriptor::Level(LevelDescriptor::band(2, 4));
        let ctx = AdmitCtx::default();
        assert_eq!(d.admit(&node(1, 0, 9), &ctx), Admit::Bypass, "below band");
        assert_eq!(d.admit(&node(2, 0, 9), &ctx), Admit::Insert { life: 0 });
        assert_eq!(d.admit(&node(3, 0, 9), &ctx), Admit::Insert { life: 0 });
        assert_eq!(d.admit(&node(4, 0, 9), &ctx), Admit::Insert { life: 0 });
        assert_eq!(d.admit(&node(5, 0, 9), &ctx), Admit::Bypass, "above band");
    }

    #[test]
    fn branch_descriptor_windows_keys_and_depth() {
        let d = Descriptor::Branch(BranchDescriptor {
            pivot: 100,
            halfwidth: 20,
            depth: 2,
        });
        let ctx = AdmitCtx::default();
        // Overlapping range at admissible depth.
        assert_eq!(d.admit(&node(1, 90, 95), &ctx), Admit::Insert { life: 0 });
        // Too deep in the tree (level above the depth bound).
        assert_eq!(d.admit(&node(3, 90, 95), &ctx), Admit::Bypass);
        // Range outside the window.
        assert_eq!(d.admit(&node(1, 200, 300), &ctx), Admit::Bypass);
        // Range straddling the window edge still overlaps.
        assert_eq!(d.admit(&node(0, 115, 140), &ctx), Admit::Insert { life: 0 });
    }

    #[test]
    fn branch_window_saturates_at_zero() {
        let d = BranchDescriptor {
            pivot: 5,
            halfwidth: 20,
            depth: 1,
        };
        assert_eq!(d.window(), (0, 25));
    }

    #[test]
    fn or_combines_with_max_life() {
        let d = Descriptor::or(
            Descriptor::Node(NodeDescriptor::leaves()),
            Descriptor::Branch(BranchDescriptor {
                pivot: 50,
                halfwidth: 10,
                depth: 3,
            }),
        );
        let ctx = AdmitCtx { life_hint: 7 };
        // Leaf inside the branch window: both admit, life = max(7, 0).
        assert_eq!(d.admit(&node(0, 45, 55), &ctx), Admit::Insert { life: 7 });
        // Leaf outside the window: node side admits.
        assert_eq!(d.admit(&node(0, 500, 600), &ctx), Admit::Insert { life: 7 });
        // Level-2 node inside the window: branch side admits.
        assert_eq!(d.admit(&node(2, 45, 55), &ctx), Admit::Insert { life: 0 });
        // Level-5 node outside: bypass.
        assert_eq!(d.admit(&node(5, 500, 600), &ctx), Admit::Bypass);
    }

    #[test]
    fn decide_reports_the_deciding_arm() {
        let ctx = AdmitCtx { life_hint: 3 };
        assert_eq!(
            Descriptor::All.decide(&node(1, 0, 9), &ctx).1,
            AdmitReason::All
        );
        assert_eq!(
            Descriptor::Node(NodeDescriptor::leaves())
                .decide(&node(0, 0, 9), &ctx)
                .1,
            AdmitReason::NodeLevel
        );
        let d = Descriptor::or(
            Descriptor::Node(NodeDescriptor::leaves()),
            Descriptor::Branch(BranchDescriptor {
                pivot: 50,
                halfwidth: 10,
                depth: 3,
            }),
        );
        // Only the branch arm admits a level-2 node in the window.
        assert_eq!(
            d.decide(&node(2, 45, 55), &ctx).1,
            AdmitReason::BranchWindow
        );
        // Both arms admit a leaf in the window: left arm's reason wins.
        assert_eq!(d.decide(&node(0, 45, 55), &ctx).1, AdmitReason::NodeLevel);
        // Both bypass: composite.
        let (v, r) = d.decide(&node(5, 500, 600), &ctx);
        assert_eq!(v, Admit::Bypass);
        assert_eq!(r, AdmitReason::Composite);
    }

    #[test]
    fn decide_agrees_with_admit() {
        let d = Descriptor::or(
            Descriptor::Level(LevelDescriptor::band(1, 2)),
            Descriptor::Node(NodeDescriptor::leaves()),
        );
        let ctx = AdmitCtx { life_hint: 9 };
        for l in 0..6 {
            let n = node(l, 10, 20);
            assert_eq!(d.admit(&n, &ctx), d.decide(&n, &ctx).0);
        }
    }

    #[test]
    fn band_width() {
        assert_eq!(LevelDescriptor::band(2, 4).width(), 3);
        assert_eq!(LevelDescriptor::band(3, 3).width(), 1);
    }

    #[test]
    #[should_panic(expected = "must be ≤")]
    fn inverted_band_rejected() {
        let _ = LevelDescriptor::band(5, 2);
    }
}
